"""Command-line regeneration of the paper's figures and tables.

Single experiments (one seed, rendered immediately)::

    python -m repro.harness fig9                 # one experiment, smoke scale
    python -m repro.harness fig9 --scale default # 10x larger operating points
    python -m repro.harness all                  # the whole evaluation section
    python -m repro.harness table1 --seed 3

Multi-seed parallel sweeps (cached, aggregated mean/std/min-max)::

    python -m repro.harness sweep fig9 --seeds 0..4 --jobs 8
    python -m repro.harness sweep fig9 fig10 --seeds 0,1,2 --scale smoke
    python -m repro.harness sweep all --seeds 0..2 --json sweep.json
    python -m repro.harness sweep fig9 --grid target_loss=2.5,2.6 --jobs 4

Sweep cells are cached content-addressed under ``.sweep-cache/`` (or
``$REPRO_SWEEP_CACHE``), so re-runs and resumes only pay for missing
cells; aggregated output is identical whatever ``--jobs`` is.  ``--json``
dumps the machine-readable sweep report CI uploads as an artifact.

Declarative scenario runs/sweeps (any ``repro.api.ScenarioSpec``)::

    python -m repro.harness scenario --spec my_scenario.json
    python -m repro.harness sweep scenario --spec my_scenario.json \
        --seeds 0..4 --grid plane.num_shards=1,2,4

Telemetry trace export (telemetry forced on for one scenario)::

    python -m repro.harness trace my_scenario.json > trace.jsonl
    python -m repro.harness trace my_scenario.json --out trace.jsonl \
        --prom metrics.prom

which writes the merged span+event JSONL trace (stdout or ``--out``)
and, with ``--prom``, the Prometheus text exposition of the run's
metrics; the span/event summary goes to stderr.

where ``--grid`` keys are dotted spec-override paths
(``tasks.0.concurrency``, ``system.cohort_batch_size``, ...).  The
``scenario`` experiment is excluded from ``all`` (it has no default
spec).

Failures in an ``all`` run no longer abort the remaining experiments:
each failure is reported on stderr and the process exits nonzero.

Experiments are dispatched through the :mod:`repro.harness.registry`;
``python -m repro.harness list`` (or ``--list``) shows every registered
experiment name with its one-line description.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import traceback

from repro.harness import configs, registry
from repro.harness import chaos  # noqa: F401  (registers the chaos experiment)
from repro.harness import figures  # noqa: F401  (imports register the experiments)
from repro.harness import obs  # noqa: F401  (registers the obs experiment)
from repro.harness import perf  # noqa: F401  (registers the cohort experiment)
from repro.harness import scenario  # noqa: F401  (registers the scenario experiment)
from repro.harness.cache import ResultCache
from repro.harness.report import print_aggregate
from repro.harness.sweep import (
    SweepError,
    build_cells,
    build_scenario_cells,
    run_sweep,
)

_SCALES = {"smoke": configs.SMOKE, "default": configs.DEFAULT, "paper": configs.PAPER}


def parse_seeds(text: str) -> list[int]:
    """Parse ``--seeds``: comma-separated ints and/or inclusive ``a..b`` ranges.

    ``"0,1,2"`` → [0, 1, 2]; ``"0..4"`` → [0, 1, 2, 3, 4]; ``"0,2..4"`` →
    [0, 2, 3, 4].  Duplicates are dropped, order preserved.
    """
    seeds: list[int] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if ".." in part:
            lo_s, _, hi_s = part.partition("..")
            lo, hi = int(lo_s), int(hi_s)
            if hi < lo:
                raise ValueError(f"empty seed range {part!r}")
            seeds.extend(range(lo, hi + 1))
        else:
            seeds.append(int(part))
    if not seeds:
        raise ValueError(f"no seeds in {text!r}")
    return list(dict.fromkeys(seeds))


def parse_grid(entries: list[str]) -> dict[str, list]:
    """Parse repeated ``--grid key=v1,v2`` flags into a param grid."""
    grid: dict[str, list] = {}
    for entry in entries:
        key, sep, rest = entry.partition("=")
        if not sep or not key or not rest:
            raise ValueError(f"--grid expects key=v1,v2,..., got {entry!r}")
        # Dedup like parse_seeds does: a repeated value would run the same
        # cell twice and double-weight that point in the aggregate.
        values = list(dict.fromkeys(_coerce(v) for v in rest.split(",") if v != ""))
        if not values:
            # An empty axis would make the cell product empty and the
            # sweep a silent no-op; fail loudly instead.
            raise ValueError(f"--grid axis {key!r} has no values: {entry!r}")
        key = key.strip()
        if key in grid:
            # Last-flag-wins would silently shrink the sweep.
            raise ValueError(f"--grid axis {key!r} given twice")
        grid[key] = values
    return grid


def _coerce(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _resolve_experiments(names: list[str]) -> list[str]:
    known = registry.names()
    for name in names:
        if name != "all" and name not in known:
            raise SystemExit(
                f"unknown experiment {name!r}; choose from: {', '.join(known + ['all'])}"
            )
    if "all" in names:
        # 'scenario' is parameterized by a --spec document and has no
        # standalone default, so it never rides along with 'all'.
        return [name for name in known if name != "scenario"]
    return list(dict.fromkeys(names))


def _load_spec_doc(path: str) -> dict:
    """Read a ScenarioSpec JSON document for the scenario experiment."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot read spec {path!r}: {exc}")


def _run_main(args: argparse.Namespace) -> int:
    scale = _SCALES[args.scale]
    params = {}
    # A scenario run honors the spec document's own execution.seed unless
    # the user explicitly passes --seed; other experiments default to 0.
    seed = args.seed
    if args.experiment == "scenario":
        if not args.spec:
            raise SystemExit("error: the scenario experiment requires --spec PATH")
        params["spec"] = _load_spec_doc(args.spec)
    else:
        if args.spec:
            raise SystemExit("error: --spec only applies to the scenario experiment")
        seed = 0 if seed is None else seed
    failures = []
    for name in _resolve_experiments([args.experiment]):
        spec = registry.get(name)
        seed_label = "spec" if seed is None else seed
        print(f"=== {name} (scale={scale.name}, seed={seed_label}) ===")
        start = time.perf_counter()
        try:
            result = spec.run(scale, seed, **params)
            spec.printer(result)  # a broken renderer is a failure too
        except Exception:
            failures.append(name)
            print(f"ERROR: {name} failed:\n{traceback.format_exc()}", file=sys.stderr)
            continue
        print(f"[{name} took {time.perf_counter() - start:.1f}s]\n")
    if failures:
        print(f"FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


def _write_report(path, sweep, scale, seeds, failures=None) -> None:
    """Dump the machine-readable sweep report (shared by success/failure paths)."""
    report = sweep.to_jsonable()
    report["scale"] = scale.name
    report["seeds"] = seeds
    if failures is not None:
        report["failures"] = failures
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)


def _sweep_main(args: argparse.Namespace) -> int:
    scale = _SCALES[args.scale]
    try:
        seeds = parse_seeds(args.seeds)
        grid = parse_grid(args.grid) if args.grid else None
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    experiments = _resolve_experiments(args.experiments)
    if grid and len(experiments) > 1:
        # Grid keys are runner keywords, and runners differ per experiment;
        # applying one grid to all of them would TypeError mid-sweep.
        print("error: --grid requires exactly one experiment", file=sys.stderr)
        return 2
    if args.spec or experiments == ["scenario"]:
        # Scenario sweeps grid over dotted ScenarioSpec field paths.
        if experiments != ["scenario"]:
            print("error: --spec only applies to the scenario experiment",
                  file=sys.stderr)
            return 2
        if not args.spec:
            print("error: sweeping 'scenario' requires --spec PATH",
                  file=sys.stderr)
            return 2
        from repro.api import ScenarioSpec, SpecError

        try:
            base = ScenarioSpec.from_dict(_load_spec_doc(args.spec))
            cells = build_scenario_cells(base, seeds, grid=grid, scale=scale)
        except SpecError as exc:
            print(f"error: invalid scenario spec: {exc}", file=sys.stderr)
            return 2
    else:
        cells = build_cells(experiments, scale, seeds, grid=grid)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    print(
        f"=== sweep {' '.join(experiments)} (scale={scale.name}, "
        f"seeds={seeds}, cells={len(cells)}, jobs={args.jobs}) ==="
    )

    try:
        sweep = run_sweep(cells, jobs=args.jobs, cache=cache,
                          use_cache=not args.no_cache, progress=print)
    except SweepError as err:
        print(f"ERROR: {err}", file=sys.stderr)
        for tb in err.tracebacks:
            print(tb, file=sys.stderr)
        # The sibling cells that succeeded are still worth a report.
        if args.json and err.result is not None:
            _write_report(args.json, err.result, scale, seeds,
                          failures=[cell.label() for cell, _ in err.failures])
            print(f"[wrote partial sweep report to {args.json}]", file=sys.stderr)
        return 1
    except Exception:
        print(f"ERROR: sweep failed:\n{traceback.format_exc()}", file=sys.stderr)
        return 1

    print(f"[swept {len(cells)} cells in {sweep.duration_s:.1f}s: "
          f"{sweep.hits} cached, {sweep.misses} ran]\n")

    # Write the machine-readable report before rendering: a broken
    # renderer must not cost CI its artifact — the results are computed.
    if args.json:
        _write_report(args.json, sweep, scale, seeds)
        print(f"[wrote sweep report to {args.json}]")

    render_failures = []
    for group in sweep.groups():
        try:
            if len(group.cells) == 1:
                spec = registry.get(group.experiment)
                print(f"--- {group.describe()} ---")
                spec.printer(group.cells[0].result())
            else:
                print_aggregate(
                    group.aggregate,
                    title=f"--- {group.describe()} (mean/std/min/max over "
                          f"{len(group.cells)} seeds) ---",
                )
        except Exception:
            render_failures.append(group.experiment)
            print(f"ERROR: rendering {group.describe()} failed:\n"
                  f"{traceback.format_exc()}", file=sys.stderr)

    if render_failures:
        print(f"FAILED rendering: {', '.join(render_failures)}", file=sys.stderr)
        return 1
    return 0


def _trace_main(args: argparse.Namespace) -> int:
    """``python -m repro.harness trace <spec>``: export one run's telemetry."""
    doc = _load_spec_doc(args.spec)
    try:
        result, report = obs.trace_scenario(
            doc, t_end=args.t_end, max_spans=args.max_spans
        )
    except Exception:
        print(f"ERROR: trace run failed:\n{traceback.format_exc()}", file=sys.stderr)
        return 1
    summary = report.summary()
    spans = summary["spans"]
    print(
        f"[trace: {sum(spans['totals'].values())} spans completed "
        f"({spans['open']} open, {spans['evicted']} evicted), "
        f"{sum(summary['events'].values())} events, "
        f"{sum(len(f['series']) for f in summary['metrics'].values())} "
        f"metric series]",
        file=sys.stderr,
    )
    jsonl = report.to_jsonl()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(jsonl + "\n")
        print(f"[wrote trace to {args.out}]", file=sys.stderr)
    else:
        print(jsonl)
    if args.prom:
        with open(args.prom, "w", encoding="utf-8") as fh:
            fh.write(report.prometheus())
        print(f"[wrote metrics exposition to {args.prom}]", file=sys.stderr)
    return 0


def _build_parsers() -> tuple[argparse.ArgumentParser, argparse.ArgumentParser]:
    run_parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate figures/tables of the PAPAYA paper.",
        epilog=(
            "Other forms: 'python -m repro.harness sweep ... ' runs "
            "multi-seed parallel sweeps (see 'sweep --help'); "
            "'python -m repro.harness list' shows every registered "
            "experiment with its description."
        ),
    )
    run_parser.add_argument(
        "experiment",
        nargs="?",
        choices=registry.names() + ["all"],
        help="which figure/table to regenerate",
    )
    run_parser.add_argument(
        "--list", action="store_true",
        help="list every registered experiment and exit",
    )
    run_parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="smoke",
        help="operating-point scale (paper values are divided down; "
        "shapes are scale-free)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=None,
        help="experiment seed (default 0; for the scenario experiment the "
        "default is the spec's own execution.seed)",
    )
    run_parser.add_argument(
        "--spec", default=None, metavar="PATH",
        help="ScenarioSpec JSON document (scenario experiment only)",
    )

    sweep_parser = argparse.ArgumentParser(
        prog="python -m repro.harness sweep",
        description="Multi-seed parallel sweep with caching and aggregation.",
    )
    sweep_parser.add_argument(
        "experiments", nargs="+", metavar="experiment",
        help=f"experiments to sweep ({', '.join(registry.names() + ['all'])})",
    )
    sweep_parser.add_argument(
        "--scale", choices=sorted(_SCALES), default="smoke",
        help="operating-point scale for every cell",
    )
    sweep_parser.add_argument(
        "--seeds", default="0",
        help="comma list and/or inclusive ranges, e.g. 0,1,2 or 0..4",
    )
    sweep_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for cache misses (1 = in-process)",
    )
    sweep_parser.add_argument(
        "--grid", action="append", default=[], metavar="KEY=V1,V2",
        help="parameter grid axis (repeatable); overrides the spec default",
    )
    sweep_parser.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default .sweep-cache or $REPRO_SWEEP_CACHE)",
    )
    sweep_parser.add_argument(
        "--no-cache", action="store_true", help="neither read nor write the cache"
    )
    sweep_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the machine-readable sweep report here",
    )
    sweep_parser.add_argument(
        "--spec", default=None, metavar="PATH",
        help="ScenarioSpec JSON document (scenario experiment only); "
        "--grid keys become dotted spec-override paths",
    )
    return run_parser, sweep_parser


def _build_trace_parser() -> argparse.ArgumentParser:
    trace_parser = argparse.ArgumentParser(
        prog="python -m repro.harness trace",
        description="Run one scenario with telemetry forced on and export "
        "the merged span+event JSONL trace.",
    )
    trace_parser.add_argument(
        "spec", metavar="SPEC", help="ScenarioSpec JSON document to run"
    )
    trace_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSONL trace here (default: stdout)",
    )
    trace_parser.add_argument(
        "--prom", default=None, metavar="PATH",
        help="also write the Prometheus metrics exposition here",
    )
    trace_parser.add_argument(
        "--t-end", type=float, default=None, metavar="SECONDS",
        help="override the spec's execution.t_end_s horizon",
    )
    trace_parser.add_argument(
        "--max-spans", type=int, default=None, metavar="N",
        help="override the tracer's retained-span bound",
    )
    return trace_parser


def _list_main() -> int:
    """``python -m repro.harness list``: one metadata line per experiment.

    Sourced from the same :class:`~repro.harness.registry.ExperimentSpec`
    metadata that ``docs/EXPERIMENTS.md`` catalogues (and that
    ``tools/check_docs.py`` keeps in sync): the one-line description,
    plus bracketed flags for specs that ignore ``--scale``
    (``scale-free``), ignore ``--seed`` (``deterministic``), or sweep a
    default ``--grid`` axis.
    """
    specs = registry.specs()
    width = max((len(spec.name) for spec in specs), default=0)
    for spec in specs:
        flags = []
        if not spec.uses_scale:
            flags.append("scale-free")
        if not spec.uses_seed:
            flags.append("deterministic")
        if spec.default_grid:
            flags.append("grid: " + ", ".join(sorted(spec.default_grid)))
        suffix = f"  [{'; '.join(flags)}]" if flags else ""
        print(f"{spec.name:<{width}}  {spec.description}{suffix}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    run_parser, sweep_parser = _build_parsers()
    if argv[:1] == ["sweep"]:
        return _sweep_main(sweep_parser.parse_args(argv[1:]))
    if argv[:1] == ["trace"]:
        return _trace_main(_build_trace_parser().parse_args(argv[1:]))
    if argv == ["list"]:
        return _list_main()
    args = run_parser.parse_args(argv)
    if args.list:
        return _list_main()
    if args.experiment is None:
        run_parser.error("an experiment name (or 'all', or 'list') is required")
    return _run_main(args)


if __name__ == "__main__":
    sys.exit(main())
