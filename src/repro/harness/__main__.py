"""Command-line regeneration of the paper's figures and tables.

Usage::

    python -m repro.harness fig9                 # one experiment, smoke scale
    python -m repro.harness fig9 --scale default # 10x larger operating points
    python -m repro.harness all                  # the whole evaluation section
    python -m repro.harness table1 --seed 3
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness import configs, figures

_EXPERIMENTS = {
    "fig2": (lambda scale, seed: figures.figure2(seed=seed), figures.print_figure2),
    "fig3": (lambda scale, seed: figures.figure3(scale=scale, seed=seed), figures.print_figure3),
    "fig6": (lambda scale, seed: figures.figure6(), figures.print_figure6),
    "fig7": (lambda scale, seed: figures.figure7(scale=scale, seed=seed), figures.print_figure7),
    "fig8": (lambda scale, seed: figures.figure8(scale=scale, seed=seed), figures.print_figure8),
    "fig9": (lambda scale, seed: figures.figure9(scale=scale, seed=seed), figures.print_figure9),
    "fig10": (lambda scale, seed: figures.figure10(scale=scale, seed=seed), figures.print_figure10),
    "fig11": (lambda scale, seed: figures.figure11(scale=scale, seed=seed), figures.print_figure11),
    "fig12": (lambda scale, seed: figures.figure12(scale=scale, seed=seed), figures.print_figure12),
    "fig13": (lambda scale, seed: figures.figure13(scale=scale, seed=seed), figures.print_figure13),
    "table1": (lambda scale, seed: figures.table1(update_budget=800, server_lr=0.05, seed=seed),
               figures.print_table1),
}

_SCALES = {"smoke": configs.SMOKE, "default": configs.DEFAULT, "paper": configs.PAPER}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate figures/tables of the PAPAYA paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="which figure/table to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="smoke",
        help="operating-point scale (paper values are divided down; "
        "shapes are scale-free)",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    args = parser.parse_args(argv)

    scale = _SCALES[args.scale]
    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        run, show = _EXPERIMENTS[name]
        print(f"=== {name} (scale={scale.name}, seed={args.seed}) ===")
        start = time.perf_counter()
        result = run(scale, args.seed)
        show(result)
        print(f"[{name} took {time.perf_counter() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
