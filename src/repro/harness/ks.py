"""Two-sample Kolmogorov–Smirnov test for the sampling-bias analysis.

Section 7.4 quantifies over-selection bias by KS-testing the distribution
of participating clients (execution time / example count) against the
ground truth (SyncFL without over-selection): AsyncFL matched the ground
truth (D = 8.8e-4, p = 0.98) while SyncFL with over-selection did not
(D = 6.6e-2, p = 0.0).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["KSResult", "ks_two_sample"]


@dataclass(frozen=True)
class KSResult:
    """D statistic (max CDF distance) and p-value of a two-sample KS test."""

    statistic: float
    pvalue: float

    def matches(self, alpha: float = 0.05) -> bool:
        """True when the samples are *not* distinguishable at level alpha."""
        return self.pvalue > alpha


def ks_two_sample(a: np.ndarray, b: np.ndarray) -> KSResult:
    """Two-sample KS test (wrapper keeping scipy at arm's length)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    res = stats.ks_2samp(a, b)
    return KSResult(statistic=float(res.statistic), pvalue=float(res.pvalue))
