"""Experiment harness: regenerate every figure and table of the paper.

Experiments are first-class :class:`~repro.harness.registry.ExperimentSpec`
entries in a process-wide registry; ``repro.harness.sweep`` fans
(experiment × seed × operating point) grids out across worker processes
with a content-addressed on-disk result cache and mean/std/min-max
multi-seed aggregation.  From the command line::

    python -m repro.harness fig9 --scale default
    python -m repro.harness sweep fig9 --seeds 0..4 --jobs 8
    python -m repro.harness sweep all --seeds 0,1,2 --json sweep.json

CI runs the tier-1 test suite, a smoke-scale figure regeneration, and a
one-cell sweep of this subsystem on every push (see
``.github/workflows/ci.yml``); the ``--json`` sweep reports are uploaded
as per-run artifacts so the performance trajectory is tracked per-PR.
"""

from repro.harness.configs import DEFAULT, PAPER, SMOKE, Scale
from repro.harness.figures import (
    Fig2Result,
    Fig3Result,
    Fig6Result,
    Fig7Result,
    Fig8Result,
    Fig9Result,
    Fig10Result,
    Fig11Result,
    Fig12Result,
    Fig13Result,
    Table1Result,
    figure2,
    figure3,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    table1,
)
from repro.harness.ks import KSResult, ks_two_sample
from repro.harness.perf import (
    CohortPoint,
    CohortResult,
    SecAggPoint,
    SecAggResult,
    ShardPoint,
    ShardsResult,
    cohort_speedup,
    secagg_speedup,
    shards_speedup,
)
from repro.harness.registry import ExperimentSpec
from repro.harness.report import (
    format_aggregate,
    format_series,
    format_table,
    print_aggregate,
    print_series,
    print_table,
)
from repro.harness.cache import ResultCache, cell_fingerprint
from repro.harness.sweep import (
    SweepCell,
    SweepResult,
    aggregate_payloads,
    build_cells,
    build_scenario_cells,
    expand_grid,
    run_sweep,
)
from repro.harness.runner import (
    DEFAULT_TARGET_LOSS,
    async_scenario,
    build_async,
    build_sync,
    make_population,
    run_async,
    run_sync,
    sync_scenario,
)
from repro.harness.scenario import (
    ScenarioRunSummary,
    ScenarioTaskSummary,
    print_scenario,
    run_scenario,
)
from repro.harness.chaos import (
    SCHEDULES,
    ChaosPoint,
    ChaosResult,
    chaos_experiment,
    print_chaos,
)
from repro.harness.obs import (
    ObsPoint,
    ObsResult,
    obs_experiment,
    print_obs,
    trace_scenario,
)

__all__ = [
    "DEFAULT",
    "PAPER",
    "SMOKE",
    "Scale",
    "Fig2Result",
    "Fig3Result",
    "Fig6Result",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "Fig10Result",
    "Fig11Result",
    "Fig12Result",
    "Fig13Result",
    "Table1Result",
    "figure2",
    "figure3",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "table1",
    "KSResult",
    "CohortPoint",
    "CohortResult",
    "cohort_speedup",
    "SecAggPoint",
    "SecAggResult",
    "secagg_speedup",
    "ShardPoint",
    "ShardsResult",
    "shards_speedup",
    "ks_two_sample",
    "ExperimentSpec",
    "ResultCache",
    "cell_fingerprint",
    "SweepCell",
    "SweepResult",
    "aggregate_payloads",
    "build_cells",
    "expand_grid",
    "run_sweep",
    "format_aggregate",
    "format_series",
    "format_table",
    "print_aggregate",
    "print_series",
    "print_table",
    "DEFAULT_TARGET_LOSS",
    "async_scenario",
    "sync_scenario",
    "build_async",
    "build_sync",
    "make_population",
    "run_async",
    "run_sync",
    "ScenarioRunSummary",
    "ScenarioTaskSummary",
    "run_scenario",
    "print_scenario",
    "build_scenario_cells",
    "SCHEDULES",
    "ChaosPoint",
    "ChaosResult",
    "chaos_experiment",
    "print_chaos",
    "ObsPoint",
    "ObsResult",
    "obs_experiment",
    "print_obs",
    "trace_scenario",
]
