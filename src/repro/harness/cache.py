"""Content-addressed on-disk cache for sweep cell results.

Each sweep cell — one (experiment × scale × seed × params) combination —
is addressed by the SHA-256 fingerprint of its canonical JSON description,
so re-running a sweep (or resuming an interrupted one) skips every cell
whose result is already on disk, regardless of the order or parallelism
of the original run.

Payloads are self-describing JSON documents::

    {"version": 1, "experiment": "fig9", "scale": {...}, "seed": 0,
     "params": {...}, "elapsed_s": 3.2, "result": {...}}

The cache root defaults to ``.sweep-cache/`` under the current directory
and can be redirected with the ``REPRO_SWEEP_CACHE`` environment variable
(CI points the sweep and benchmark steps of one workflow run at a shared
workspace path so cells computed by the sweep are reused within that run;
runner workspaces are ephemeral, so each run starts cold).  Writes are
atomic (temp file + rename) so a killed sweep never leaves a truncated
entry behind.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping

__all__ = ["CACHE_VERSION", "CACHE_ENV_VAR", "cell_fingerprint", "ResultCache"]

# Bump for cross-cutting changes outside harness/ (core/, sim/, nn/) that
# alter results — code_digest only tracks the harness package itself.
# v2: cohort-engine PR reassociated scalar LSTM arithmetic (bias folded
# into zx, gate-derivative parenthesization), shifting results by ulps.
# v3: fleet-scheduler fixes (re-bookings clamped to the next unfired
# tick, explicit tick indexing on resume) change which devices wake in
# `million` runs — previously-leaked devices now return.
CACHE_VERSION = 3
CACHE_ENV_VAR = "REPRO_SWEEP_CACHE"
_DEFAULT_ROOT = ".sweep-cache"


def _canonical(obj: Any) -> Any:
    """Normalize a value for fingerprinting (dataclasses → sorted dicts)."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: _canonical(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, Mapping):
        return {str(k): _canonical(obj[k]) for k in sorted(obj, key=str)}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    return obj


def cell_fingerprint(
    experiment: str, scale: Any, seed: int, params: Mapping[str, Any] | None = None
) -> str:
    """Stable content address of one sweep cell.

    The scale participates with all of its fields (not just its name), so
    a custom scale never collides with a preset of the same name.  For a
    registered experiment the fingerprint also folds in:

    * the experiment's code identity (``registry.code_digest``) — editing
      the module that defines a runner invalidates its cached results, so
      a warm cache can never serve numbers computed by old code;
    * its seed/scale invariances — a runner declared ``uses_seed=False``
      fingerprints identically for every seed (and likewise for scale),
      so invariant experiments are cached exactly once.
    """
    from repro.harness import registry  # runtime import: no cycle at load time

    spec = registry.find(experiment)
    uses_seed = spec.uses_seed if spec is not None else True
    uses_scale = spec.uses_scale if spec is not None else True
    doc = {
        "version": CACHE_VERSION,
        "experiment": experiment,
        "code": registry.code_digest(experiment),
        "scale": _canonical(scale) if uses_scale else None,
        "seed": int(seed) if uses_seed else 0,
        "params": _canonical(dict(params or {})),
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of ``<fingerprint>.json`` cell payloads."""

    def __init__(self, root: str | os.PathLike | None = None):
        if root is None:
            root = os.environ.get(CACHE_ENV_VAR) or _DEFAULT_ROOT
        self.root = Path(root)

    def path(self, fingerprint: str) -> Path:
        """Where a cell payload lives (two-level fan-out keeps dirs small)."""
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def load(self, fingerprint: str) -> dict | None:
        """The stored payload, or ``None`` on miss / version mismatch / corruption."""
        p = self.path(fingerprint)
        try:
            with open(p, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            # ValueError covers both JSONDecodeError and the
            # UnicodeDecodeError a byte-corrupt entry raises.
            return None
        if not isinstance(payload, dict) or payload.get("version") != CACHE_VERSION:
            return None
        return payload

    def store(self, fingerprint: str, payload: dict) -> Path:
        """Atomically persist a cell payload; returns its path."""
        p = self.path(fingerprint)
        p.parent.mkdir(parents=True, exist_ok=True)
        payload = {"version": CACHE_VERSION, **payload}
        fd, tmp = tempfile.mkstemp(dir=p.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, p)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return p

    def __contains__(self, fingerprint: str) -> bool:
        return self.path(fingerprint).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for p in list(self.root.glob("*/*.json")):
            try:
                p.unlink()
                removed += 1
            except OSError:
                pass
        return removed
