"""repro — reproduction of PAPAYA: Practical, Private, and Scalable Federated Learning.

Subpackage layout:

* :mod:`repro.core` — FedBuff buffered asynchronous aggregation, SyncFL with
  over-selection, server optimizers, client trainer, staleness policies,
  the DP extension, and the surrogate convergence model.
* :mod:`repro.secagg` — Asynchronous Secure Aggregation (TEE-style trusted
  aggregator, DH channels, one-time-pad masking, attestation, verifiable log).
* :mod:`repro.system` — Coordinator / Selector / Aggregator / client runtime,
  plus the SecAgg-integrated buffered aggregator.
* :mod:`repro.sim` — discrete-event simulator and heterogeneous device
  population (substitute for the paper's ~100M-device fleet).
* :mod:`repro.client` — Edge Training Engine (Example Store, Executor).
* :mod:`repro.nn` / :mod:`repro.data` — NumPy LSTM language model and the
  synthetic non-IID federated corpus it trains on.
* :mod:`repro.harness` — regeneration of every figure and table in the paper
  (also a CLI: ``python -m repro.harness``).

The most common entry points are re-exported here.
"""

from repro.core import (
    FedAdam,
    FedBuffAggregator,
    GlobalModelState,
    LocalTrainer,
    SyncRoundAggregator,
    TaskConfig,
    TrainingMode,
)
from repro.data import CorpusSpec, FederatedDataset, TopicMarkovCorpus
from repro.nn import LSTMLanguageModel, ModelConfig
from repro.sim import DevicePopulation, PopulationConfig
from repro.system import (
    FederatedSimulation,
    RealTrainingAdapter,
    SurrogateAdapter,
    SystemConfig,
)

__version__ = "1.0.0"

__all__ = [
    "FedAdam",
    "FedBuffAggregator",
    "GlobalModelState",
    "LocalTrainer",
    "SyncRoundAggregator",
    "TaskConfig",
    "TrainingMode",
    "CorpusSpec",
    "FederatedDataset",
    "TopicMarkovCorpus",
    "LSTMLanguageModel",
    "ModelConfig",
    "DevicePopulation",
    "PopulationConfig",
    "FederatedSimulation",
    "RealTrainingAdapter",
    "SurrogateAdapter",
    "SystemConfig",
    "__version__",
]
