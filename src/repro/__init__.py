"""repro — reproduction of PAPAYA: Practical, Private, and Scalable Federated Learning.

**Start at** :mod:`repro.api`: describe a deployment as a declarative,
serializable :class:`ScenarioSpec` (population + tasks + aggregation
plane + privacy + execution knobs) and build/run it through the
:class:`Deployment` façade — the single construction path for every
simulation in the repo::

    from repro.api import (
        Deployment, ExecutionSpec, PopulationSpec, ScenarioSpec, TaskSpec,
    )

    spec = ScenarioSpec(
        population=PopulationSpec(n_devices=10_000),
        tasks=(TaskSpec(name="lm", mode="async",
                        concurrency=64, aggregation_goal=8),),
        execution=ExecutionSpec(seed=0, t_end_s=3600.0),
    )
    result = Deployment.from_spec(spec).run()

Specs round-trip through JSON (``spec.to_dict()``), validate invalid
combinations with field-named errors, and sweep declaratively
(``python -m repro.harness sweep scenario --spec s.json --grid
plane.num_shards=1,2,4``).  Aggregation planes (``"single"``,
``"sharded"``, ``"secure"``), shard routing policies, and trainer
adapters are named entries in the :mod:`repro.system.planes` registries,
so new ones plug in without touching the orchestrator.

Subpackage layout:

* :mod:`repro.api` — the scenario API: ``ScenarioSpec`` + ``Deployment``.
* :mod:`repro.core` — FedBuff buffered asynchronous aggregation (scalar,
  batched-block, and sharded-hierarchical), SyncFL with over-selection,
  server optimizers, client trainer, staleness policies, the DP
  extension, and the surrogate convergence model.
* :mod:`repro.secagg` — Asynchronous Secure Aggregation (TEE-style trusted
  aggregator, DH channels, one-time-pad masking, attestation, verifiable log).
* :mod:`repro.system` — Coordinator / Selector / Aggregator / client runtime,
  the SecAgg-integrated buffered aggregator, and the plane/routing/trainer
  registries (:mod:`repro.system.planes`).
* :mod:`repro.sim` — discrete-event simulator and heterogeneous device
  population (substitute for the paper's ~100M-device fleet).
* :mod:`repro.client` — Edge Training Engine (Example Store, Executor).
* :mod:`repro.nn` / :mod:`repro.data` — NumPy LSTM language model and the
  synthetic non-IID federated corpus it trains on.
* :mod:`repro.harness` — regeneration of every figure and table in the paper
  plus parallel cached sweeps (also a CLI: ``python -m repro.harness``).

The most common entry points are re-exported here.
"""

from repro.api import (
    Deployment,
    ExecutionSpec,
    PlaneSpec,
    PopulationSpec,
    ScenarioSpec,
    TaskSpec,
)
from repro.core import (
    FedAdam,
    FedBuffAggregator,
    GlobalModelState,
    LocalTrainer,
    SyncRoundAggregator,
    TaskConfig,
    TrainingMode,
)
from repro.data import CorpusSpec, FederatedDataset, TopicMarkovCorpus
from repro.nn import LSTMLanguageModel, ModelConfig
from repro.sim import DevicePopulation, PopulationConfig
from repro.system import (
    FederatedSimulation,
    RealTrainingAdapter,
    SurrogateAdapter,
    SystemConfig,
)

__version__ = "1.0.0"

__all__ = [
    "Deployment",
    "ScenarioSpec",
    "PopulationSpec",
    "TaskSpec",
    "PlaneSpec",
    "ExecutionSpec",
    "FedAdam",
    "FedBuffAggregator",
    "GlobalModelState",
    "LocalTrainer",
    "SyncRoundAggregator",
    "TaskConfig",
    "TrainingMode",
    "CorpusSpec",
    "FederatedDataset",
    "TopicMarkovCorpus",
    "LSTMLanguageModel",
    "ModelConfig",
    "DevicePopulation",
    "PopulationConfig",
    "FederatedSimulation",
    "RealTrainingAdapter",
    "SurrogateAdapter",
    "SystemConfig",
    "__version__",
]
