#!/usr/bin/env python3
"""Forbid direct ``FederatedSimulation(...)`` construction outside the façade.

``repro.api.Deployment`` is the single construction path for simulations
(ISSUE 5); this check keeps it that way.  It scans every ``*.py`` file
under ``src/``, ``examples/``, and ``benchmarks/`` (tests are exempt —
the differential suites deliberately hand-wire the pre-redesign
construction to pin trace equivalence) for a ``FederatedSimulation(``
call, skipping ``class FederatedSimulation(`` definitions and files
listed in ``tools/facade_allowlist.txt``.

Run from the repository root (CI does, in the lint job)::

    python tools/check_facade.py

Exit status 0 when clean; 1 with one ``file:line`` diagnostic per
violation otherwise.
"""

from __future__ import annotations

import pathlib
import re
import sys

#: call sites of FederatedSimulation( that are not class definitions
PATTERN = re.compile(r"(?<!class )\bFederatedSimulation\(")
SCAN_DIRS = ("src", "examples", "benchmarks")
ALLOWLIST_FILE = "tools/facade_allowlist.txt"


def load_allowlist(root: pathlib.Path) -> set[str]:
    """Posix-style repo-relative paths allowed to construct directly."""
    allowlist_path = root / ALLOWLIST_FILE
    entries: set[str] = set()
    for line in allowlist_path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            entries.add(line)
    return entries


def find_violations(root: pathlib.Path) -> list[tuple[str, int, str]]:
    """Every (file, line, text) that bypasses the Deployment façade."""
    allowlist = load_allowlist(root)
    violations = []
    for scan_dir in SCAN_DIRS:
        base = root / scan_dir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            if rel in allowlist:
                continue
            for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            ):
                if PATTERN.search(line):
                    violations.append((rel, lineno, line.strip()))
    return violations


def main(root: str | pathlib.Path = ".") -> int:
    violations = find_violations(pathlib.Path(root))
    if not violations:
        return 0
    print(
        "Direct FederatedSimulation(...) construction outside the repro.api "
        "facade:\n",
        file=sys.stderr,
    )
    for rel, lineno, text in violations:
        print(f"  {rel}:{lineno}: {text}", file=sys.stderr)
    print(
        "\nBuild simulations through repro.api "
        "(Deployment.from_spec(spec).build()) instead, or add the file to "
        f"{ALLOWLIST_FILE} with a justification.",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
