#!/usr/bin/env python3
"""Keep ``docs/EXPERIMENTS.md`` in lockstep with the experiment registry.

The experiment catalogue is documentation *about* the registry
(``repro.harness.registry``), so it can drift: an experiment gets
registered without a docs section, a section outlives its experiment,
or a registry description is reworded without updating the page.  This
check makes each of those a CI failure:

* every registered experiment has a ``### `name` `` section, and every
  section names a registered experiment (set equality, both directions);
* each section quotes the registry description **verbatim** (the line
  ``*<description>*`` right under the heading);
* each section contains a fenced code block with the experiment's CLI
  invocation (``python -m repro.harness <name>``).

``docs/OBSERVABILITY.md`` is held to the same standard against the
observability catalogs (``repro.obs.telemetry``): each catalog table —
metrics, spans, profiling phases — must list exactly the names the
plane emits (``METRIC_CATALOG`` / ``SPAN_CATALOG`` / ``PHASE_CATALOG``),
both directions.

Run from the repository root (CI does, in the docs job)::

    python tools/check_docs.py

Exit status 0 when in sync; 1 with one diagnostic per drift otherwise.
"""

from __future__ import annotations

import pathlib
import re
import sys

DOC_FILE = "docs/EXPERIMENTS.md"
OBS_DOC_FILE = "docs/OBSERVABILITY.md"

#: a catalogue section heading: ### `name`
HEADING = re.compile(r"^### `([a-z0-9_]+)`\s*$", re.MULTILINE)

#: a catalog table row: | `name` | ...
TABLE_ROW = re.compile(r"^\| `([a-z0-9_]+)` \|", re.MULTILINE)


def load_registry(root: pathlib.Path):
    """Import the populated registry from the repo's ``src/`` tree."""
    sys.path.insert(0, str(root / "src"))
    # Importing the runner modules executes their register() calls.
    from repro.harness import chaos, figures, obs, perf, scenario  # noqa: F401
    from repro.harness import registry

    return registry


def split_sections(text: str) -> dict[str, str]:
    """Map each ``### `name` `` heading to its section body."""
    matches = list(HEADING.finditer(text))
    sections: dict[str, str] = {}
    for i, match in enumerate(matches):
        end = matches[i + 1].start() if i + 1 < len(matches) else len(text)
        sections[match.group(1)] = text[match.end():end]
    return sections


def find_drift(root: pathlib.Path) -> list[str]:
    """Every way the catalogue disagrees with the registry."""
    registry = load_registry(root)
    doc_path = root / DOC_FILE
    if not doc_path.is_file():
        return [f"{DOC_FILE} is missing"]
    sections = split_sections(doc_path.read_text(encoding="utf-8"))

    registered = set(registry.names())
    documented = set(sections)
    problems = []
    for name in sorted(registered - documented):
        problems.append(
            f"{DOC_FILE}: registered experiment {name!r} has no"
            " ### `" + name + "` section"
        )
    for name in sorted(documented - registered):
        problems.append(
            f"{DOC_FILE}: section {name!r} does not match any registered"
            " experiment"
        )

    for name in sorted(registered & documented):
        body = sections[name]
        description = registry.get(name).description
        if f"*{description}*" not in body:
            problems.append(
                f"{DOC_FILE}: section {name!r} must quote the registry"
                f" description verbatim: *{description}*"
            )
        invocation = f"python -m repro.harness {name}"
        if "```" not in body or invocation not in body:
            problems.append(
                f"{DOC_FILE}: section {name!r} needs a fenced code block"
                f" containing `{invocation}`"
            )
    return problems


def _doc_table_names(text: str, heading: str) -> set[str] | None:
    """Backticked first-column entries of the table under ``## heading``."""
    match = re.search(rf"^## {re.escape(heading)}\s*$", text, re.MULTILINE)
    if match is None:
        return None
    end = re.search(r"^## ", text[match.end():], re.MULTILINE)
    section = text[match.end():match.end() + end.start() if end else len(text)]
    return set(TABLE_ROW.findall(section))


def find_catalog_drift(root: pathlib.Path) -> list[str]:
    """Every way OBSERVABILITY.md disagrees with the emitted catalogs."""
    sys.path.insert(0, str(root / "src"))
    from repro.obs.telemetry import METRIC_CATALOG, PHASE_CATALOG, SPAN_CATALOG

    doc_path = root / OBS_DOC_FILE
    if not doc_path.is_file():
        return [f"{OBS_DOC_FILE} is missing"]
    text = doc_path.read_text(encoding="utf-8")

    problems = []
    for heading, catalog in (
        ("Metric catalog", METRIC_CATALOG),
        ("Span catalog", SPAN_CATALOG),
        ("Profiling phase catalog", PHASE_CATALOG),
    ):
        documented = _doc_table_names(text, heading)
        if documented is None:
            problems.append(f"{OBS_DOC_FILE}: no ## {heading} section")
            continue
        for name in sorted(set(catalog) - documented):
            problems.append(
                f"{OBS_DOC_FILE}: {heading} table is missing `{name}` "
                f"(emitted by repro.obs.telemetry)"
            )
        for name in sorted(documented - set(catalog)):
            problems.append(
                f"{OBS_DOC_FILE}: {heading} table documents `{name}`, "
                f"which the plane does not emit"
            )
    return problems


def main(root: str | pathlib.Path = ".") -> int:
    problems = find_drift(pathlib.Path(root)) + find_catalog_drift(
        pathlib.Path(root)
    )
    if not problems:
        return 0
    print("docs are out of sync with the code:\n", file=sys.stderr)
    for problem in problems:
        print(f"  {problem}", file=sys.stderr)
    print(
        "\nRe-sync the catalogues: one ### `name` section per registered"
        " experiment in EXPERIMENTS.md (registry description verbatim as"
        " *italics*, a fenced CLI invocation; metadata lives next to each"
        " register() call in repro/harness/{figures,perf,scenario,chaos,obs}.py)"
        " and one table row per emitted metric/span/phase in"
        " OBSERVABILITY.md (catalogs in repro/obs/telemetry.py).",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
