#!/usr/bin/env python3
"""Keep ``docs/EXPERIMENTS.md`` in lockstep with the experiment registry.

The experiment catalogue is documentation *about* the registry
(``repro.harness.registry``), so it can drift: an experiment gets
registered without a docs section, a section outlives its experiment,
or a registry description is reworded without updating the page.  This
check makes each of those a CI failure:

* every registered experiment has a ``### `name` `` section, and every
  section names a registered experiment (set equality, both directions);
* each section quotes the registry description **verbatim** (the line
  ``*<description>*`` right under the heading);
* each section contains a fenced code block with the experiment's CLI
  invocation (``python -m repro.harness <name>``).

Run from the repository root (CI does, in the docs job)::

    python tools/check_docs.py

Exit status 0 when in sync; 1 with one diagnostic per drift otherwise.
"""

from __future__ import annotations

import pathlib
import re
import sys

DOC_FILE = "docs/EXPERIMENTS.md"

#: a catalogue section heading: ### `name`
HEADING = re.compile(r"^### `([a-z0-9_]+)`\s*$", re.MULTILINE)


def load_registry(root: pathlib.Path):
    """Import the populated registry from the repo's ``src/`` tree."""
    sys.path.insert(0, str(root / "src"))
    # Importing the runner modules executes their register() calls.
    from repro.harness import chaos, figures, perf, scenario  # noqa: F401
    from repro.harness import registry

    return registry


def split_sections(text: str) -> dict[str, str]:
    """Map each ``### `name` `` heading to its section body."""
    matches = list(HEADING.finditer(text))
    sections: dict[str, str] = {}
    for i, match in enumerate(matches):
        end = matches[i + 1].start() if i + 1 < len(matches) else len(text)
        sections[match.group(1)] = text[match.end():end]
    return sections


def find_drift(root: pathlib.Path) -> list[str]:
    """Every way the catalogue disagrees with the registry."""
    registry = load_registry(root)
    doc_path = root / DOC_FILE
    if not doc_path.is_file():
        return [f"{DOC_FILE} is missing"]
    sections = split_sections(doc_path.read_text(encoding="utf-8"))

    registered = set(registry.names())
    documented = set(sections)
    problems = []
    for name in sorted(registered - documented):
        problems.append(
            f"{DOC_FILE}: registered experiment {name!r} has no"
            " ### `" + name + "` section"
        )
    for name in sorted(documented - registered):
        problems.append(
            f"{DOC_FILE}: section {name!r} does not match any registered"
            " experiment"
        )

    for name in sorted(registered & documented):
        body = sections[name]
        description = registry.get(name).description
        if f"*{description}*" not in body:
            problems.append(
                f"{DOC_FILE}: section {name!r} must quote the registry"
                f" description verbatim: *{description}*"
            )
        invocation = f"python -m repro.harness {name}"
        if "```" not in body or invocation not in body:
            problems.append(
                f"{DOC_FILE}: section {name!r} needs a fenced code block"
                f" containing `{invocation}`"
            )
    return problems


def main(root: str | pathlib.Path = ".") -> int:
    problems = find_drift(pathlib.Path(root))
    if not problems:
        return 0
    print(f"{DOC_FILE} is out of sync with the experiment registry:\n",
          file=sys.stderr)
    for problem in problems:
        print(f"  {problem}", file=sys.stderr)
    print(
        "\nRe-sync the catalogue: one ### `name` section per registered"
        " experiment, the registry description verbatim as *italics*, and"
        " a fenced CLI invocation. The registry metadata lives next to"
        " each register() call in repro/harness/{figures,perf,scenario,chaos}.py.",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
