"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's figures: they vary the knobs the paper fixes
(staleness weighting policy, over-selection factor, max-staleness abort
threshold, K as a fraction of concurrency) and check the trade-offs the
paper's prose asserts.
"""


from repro.core import (
    ConstantStaleness,
    FedBuffAggregator,
    HardCutoffStaleness,
    PolynomialStaleness,
    SurrogateModelState,
    SurrogateParams,
    SurrogateTrainer,
)
from repro.harness import SMOKE, build_async, build_sync, make_population
from repro.harness.report import print_table


class TestStalenessPolicyAblation:
    """Paper (Appendix E.2): down-weight stale updates by 1/sqrt(1+s)."""

    def test_policies_order_effective_weight(self, once, benchmark):
        def measure():
            # Feed one fresh and one very stale update through each policy
            # and compare the stale update's realized weight.
            results = {}
            for name, pol in (
                ("constant", ConstantStaleness()),
                ("polynomial", PolynomialStaleness(0.5)),
                ("hard_cutoff", HardCutoffStaleness(cutoff=5)),
            ):
                st = SurrogateModelState(SurrogateParams())
                agg = FedBuffAggregator(st, goal=1, staleness_policy=pol,
                                        example_weighting="none")
                tr = SurrogateTrainer(SurrogateParams(quality_noise=0.0))
                agg.register_download(0)  # will become stale
                for v in range(8):
                    agg.register_download(100 + v)
                    agg.receive_update(tr.train(50, 100 + v, v))
                upd, _ = agg.receive_update(tr.train(50, 0, 0))
                results[name] = upd.weight
            return results

        weights = once(measure)
        print_table(["policy", "weight of s=8 update"],
                    [[k, v] for k, v in weights.items()],
                    title="Ablation — staleness weighting policies")
        assert weights["constant"] == 1.0
        assert weights["polynomial"] == 1.0 / 3.0  # 1/sqrt(9)
        assert weights["hard_cutoff"] == 0.0
        benchmark.extra_info["weights"] = {k: round(v, 4) for k, v in weights.items()}


class TestOverSelectionAblation:
    """Round time vs wasted work as the over-selection factor grows."""

    def test_overselection_factor_tradeoff(self, once, benchmark):
        def sweep():
            pop = make_population(SMOKE.population, seed=0)
            rows = []
            for o in (0.0, 0.1, 0.3, 0.5):
                sim = build_sync(16, pop, over_selection=o, seed=0)
                res = sim.run(t_end=3600.0)
                s = res.stats("sync")
                steps = s.server_steps
                waste = s.discarded / max(1, s.aggregated + s.discarded)
                rows.append((o, steps, waste))
            return rows

        rows = once(sweep)
        print_table(["over-selection", "rounds/h", "wasted fraction"],
                    [list(r) for r in rows],
                    title="Ablation — over-selection factor")
        factors = [r[0] for r in rows]
        steps = [r[1] for r in rows]
        waste = [r[2] for r in rows]
        # More over-selection completes rounds faster...
        assert steps[-1] > steps[0], "over-selection must speed rounds up"
        # ...at the price of monotonically more wasted client work.
        assert all(a <= b + 0.02 for a, b in zip(waste, waste[1:]))
        # Without over-selection only mid-round replacements can be
        # discarded (a failed client's stand-in racing the round close).
        assert waste[0] < 0.01
        assert waste[-1] > 0.2  # o=0.5 wastes ~a third of all updates
        benchmark.extra_info["rounds_per_hour"] = dict(zip(factors, steps))
        benchmark.extra_info["wasted_fraction"] = {
            f: round(w, 3) for f, w in zip(factors, waste)
        }


class TestMaxStalenessAblation:
    """Appendix E.1: abort clients whose staleness exceeds a bound."""

    def test_staleness_bound_tradeoff(self, once, benchmark):
        def sweep():
            pop = make_population(SMOKE.population, seed=0)
            rows = []
            for bound in (1, 4, 1000):
                sim = build_async(32, 4, pop, seed=0, max_staleness=bound)
                res = sim.run(t_end=3600.0)
                s = res.stats("async")
                rows.append((bound, s.aborted, s.mean_staleness, s.aggregated))
            return rows

        rows = once(sweep)
        print_table(["max staleness", "aborted", "mean staleness", "aggregated"],
                    [list(r) for r in rows],
                    title="Ablation — max-staleness abort threshold")
        aborted = [r[1] for r in rows]
        mean_stal = [r[2] for r in rows]
        # Tighter bounds abort more clients and keep aggregated updates fresher.
        assert aborted[0] > aborted[-1]
        assert mean_stal[0] < mean_stal[-1]
        assert aborted[-1] == 0  # effectively unbounded
        benchmark.extra_info["rows"] = [
            {"bound": b, "aborted": a, "mean_staleness": round(m, 2)}
            for b, a, m, _ in rows
        ]


class TestGoalFractionAblation:
    """Paper (Section 7.1): K at 10–30 % of concurrency works well."""

    def test_goal_fraction_sweet_spot(self, once, benchmark):
        def sweep():
            pop = make_population(SMOKE.population, seed=0)
            params = SurrogateParams(critical_goal=SMOKE.critical_goal)
            rows = []
            for frac in (0.05, 0.15, 0.5, 1.0):
                goal = max(1, int(32 * frac))
                sim = build_async(32, goal, pop, seed=0, surrogate=params)
                res = sim.run(t_end=3600.0 * 6, target_loss=2.55)
                t = res.stats("async").time_to_target
                rows.append((frac, goal, None if t is None else t / 3600.0))
            return rows

        rows = once(sweep)
        print_table(["K/C", "K", "hours to target"],
                    [[f, g, "n/a" if h is None else h] for f, g, h in rows],
                    title="Ablation — aggregation goal as fraction of concurrency")
        hours = {f: h for f, _, h in rows if h is not None}
        # The paper's 10-30% band must beat goal == concurrency.
        assert hours[0.15] < hours[1.0]
        benchmark.extra_info["hours_by_fraction"] = {
            f: round(h, 3) for f, h in hours.items()
        }
