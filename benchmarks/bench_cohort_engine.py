"""Cohort execution engine benchmark: batched vs scalar local training.

Regenerates the ``cohort`` experiment (see ``repro/harness/perf.py``)
through the registry/cache layer, asserts the engine's two contractual
properties — differential equivalence within 1e-8 at every cohort size,
and a multiple-x wall-clock speedup once cohorts reach simulation-
relevant sizes (K >= 16) — and records the full operating curve in the
JSON report CI uploads.

The speedup floors asserted here are deliberately below the locally
measured values (~3x at K in the 32-64 range on the fig9 real-training
workload): shared CI runners are noisy, and the benchmark must fail only
on real regressions, not scheduling jitter.  The measured numbers land in
``extra_info`` so the artifact tracks the true trajectory per run.
"""

from repro.harness import registry
from repro.harness import perf  # noqa: F401  (registers the cohort experiment)


class TestCohortEngine:
    def test_cohort_speedup_and_equivalence(self, cached_run, benchmark):
        res = cached_run("cohort")
        by_k = {p.cohort_size: p for p in res.points}

        for point in res.points:
            # The differential guarantee: every cohort size, bit-equal in
            # practice, and never beyond the 1e-8 contract.
            assert point.equivalent, (
                f"K={point.cohort_size}: batched/scalar divergence "
                f"{point.max_delta_diff:.2e} exceeds 1e-8"
            )
            benchmark.extra_info[f"speedup_k{point.cohort_size}"] = round(
                point.speedup, 3
            )
            benchmark.extra_info[f"scalar_ms_k{point.cohort_size}"] = round(
                point.scalar_s * 1e3, 2
            )
            benchmark.extra_info[f"batched_ms_k{point.cohort_size}"] = round(
                point.batched_s * 1e3, 2
            )

        # Simulation-relevant cohorts must be decisively faster than the
        # scalar path (locally ~2.5x at K=16 rising to ~3x+ by K=32-64).
        assert by_k[16].speedup >= 1.5
        assert by_k[32].speedup >= 2.0
        assert by_k[64].speedup >= 2.0
        best = max(p.speedup for p in res.points if p.cohort_size >= 16)
        benchmark.extra_info["best_speedup_k16plus"] = round(best, 3)
        assert best >= 2.25
