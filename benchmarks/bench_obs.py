"""Observability floors: telemetry must be free when off, cheap when on.

The ``obs`` experiment runs each workload twice — telemetry off, then
telemetry on — and this bench pins the two promises the observability
plane makes (see ``docs/OBSERVABILITY.md``):

* **bit-identity** — the on-arm's participation trace and server steps
  are byte-equal to the off-arm's in *every* workload: observers are
  read-only and never perturb an RNG draw or the event order;
* **bounded overhead** — on the ``million`` workload (the columnar
  fleet, where the paper's scaling claim lives) the telemetry-on wall
  clock stays within ``OVERHEAD_CEILING_PCT`` of telemetry off.  The
  ``shards`` workload opens a span per session and is deliberately
  span-heavy; its overhead is reported, not pinned.

Span-tree completeness rides along: the on-arm tracer must finish with
zero orphaned spans (every completed span's parent chain intact).
"""

from repro.harness.report import print_table

#: ceiling on telemetry-on overhead for the fleet-scale workload
OVERHEAD_CEILING_PCT = 5.0


class TestObservabilityContracts:
    def test_telemetry_floors_hold(self, cached_run, benchmark):
        res = cached_run("obs")
        assert res.points, "obs experiment produced no workload points"

        print_table(
            ["workload", "off (s)", "on (s)", "overhead %", "bit-identical",
             "spans", "orphans"],
            [[p.workload, p.telemetry_off_s, p.telemetry_on_s,
              p.overhead_pct, p.bit_identical, p.spans_total, p.span_orphans]
             for p in res.points],
            title="Observability floors",
        )

        for p in res.points:
            assert p.bit_identical, (
                f"{p.workload}: telemetry-on run diverged from telemetry-off "
                f"— the observer perturbed the simulation"
            )
            assert p.span_orphans == 0, (
                f"{p.workload}: {p.span_orphans} spans closed against a "
                f"parent that never existed"
            )

        by_name = {p.workload: p for p in res.points}
        million = by_name.get("million")
        assert million is not None, "obs experiment skipped the million workload"
        assert million.spans_total > 0 or million.events_total >= 0
        assert million.overhead_pct <= OVERHEAD_CEILING_PCT, (
            f"million: telemetry-on overhead {million.overhead_pct:.2f}% "
            f"exceeds the {OVERHEAD_CEILING_PCT}% ceiling"
        )

        benchmark.extra_info["workloads"] = len(res.points)
        benchmark.extra_info["million_overhead_pct"] = million.overhead_pct
        benchmark.extra_info["max_overhead_pct"] = res.max_overhead_pct
        benchmark.extra_info["all_bit_identical"] = res.all_identical
