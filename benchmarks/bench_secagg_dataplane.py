"""Secure-aggregation data-plane benchmark: block vs scalar server+TSA.

Regenerates the ``secagg`` experiment (see ``repro/harness/perf.py``)
through the registry/cache layer and asserts the data plane's two
contractual properties at every (cohort size, vector length) operating
point — exact bit-identity (decoded aggregates, release vectors, and TSA
boundary meters all agree between the scalar and block arms, max
divergence 0) and a decisive wall-clock speedup once cohorts and vectors
reach protocol-relevant sizes.

The speedup floors asserted here are deliberately below the locally
measured values (~2.2x at K=64 on a 25k vector, ~3.1x at K=64 on a 200k
vector): shared CI runners are noisy, and the benchmark must fail only on
real regressions, not scheduling jitter.  The measured numbers land in
``extra_info`` so the artifact tracks the true trajectory per run.
"""

from repro.harness import perf  # noqa: F401  (registers the secagg experiment)


class TestSecAggDataPlane:
    def test_secagg_speedup_and_bit_identity(self, cached_run, benchmark):
        res = cached_run("secagg")
        by_point = {(p.cohort_size, p.vector_length): p for p in res.points}

        for point in res.points:
            # The differential guarantee: every operating point must be
            # exactly bit-identical — this is a correctness contract, not
            # a timing, so it has no tolerance at all.
            assert point.bit_identical, (
                f"K={point.cohort_size} l={point.vector_length}: block/scalar "
                f"aggregates or release vectors differ"
            )
            assert point.max_divergence == 0.0
            assert point.boundary_match, (
                f"K={point.cohort_size} l={point.vector_length}: TSA boundary "
                f"meters diverged between arms"
            )
            key = f"k{point.cohort_size}_l{point.vector_length}"
            benchmark.extra_info[f"speedup_{key}"] = round(point.speedup, 3)
            benchmark.extra_info[f"scalar_ms_{key}"] = round(point.scalar_s * 1e3, 2)
            benchmark.extra_info[f"block_ms_{key}"] = round(point.block_s * 1e3, 2)

        # Protocol-relevant operating points must be decisively faster
        # (locally ~2.2x at K=64 on the small vector, ~3.1x at K=64 on
        # the model-sized one).
        sizes = sorted({p.cohort_size for p in res.points})
        lengths = sorted({p.vector_length for p in res.points})
        big_k, small_l, big_l = sizes[-1], lengths[0], lengths[-1]
        assert by_point[(big_k, small_l)].speedup >= 1.5
        assert by_point[(big_k, big_l)].speedup >= 2.0
        best = max(p.speedup for p in res.points if p.cohort_size >= 32)
        benchmark.extra_info["best_speedup_k32plus"] = round(best, 3)
        assert best >= 2.25
