"""Figure 9 — the headline: AsyncFL converges faster with fewer trips.

Paper claims reproduced here (Async vs Sync at each concurrency):
* AsyncFL reaches the target loss faster at every concurrency level;
* the speedup *widens* as concurrency grows (paper: 2× → 5×);
* AsyncFL needs fewer communication trips, and that gap also widens
  (paper: 2× → 8×).
"""

from repro.harness.figures import print_figure9


def test_fig9_async_beats_sync_increasingly(cached_run, benchmark):
    res = cached_run("fig9")
    print_figure9(res)

    rows = [r for r in res.rows if r.speedup is not None]
    assert len(rows) >= 3, "both methods must reach the target"

    # Async wins everywhere.
    for r in rows:
        assert r.speedup > 1.0, f"async slower at C={r.concurrency}"
        assert r.trip_ratio is not None and r.trip_ratio > 0.9

    # The speedup and the communication gap widen with concurrency.
    assert rows[-1].speedup > rows[0].speedup, "speedup must widen (paper: 2x->5x)"
    assert rows[-1].speedup > 2.0, "top-of-sweep speedup should be substantial"
    assert rows[-1].trip_ratio > rows[0].trip_ratio, "trip gap must widen (2x->8x)"

    benchmark.extra_info["speedups"] = {
        r.concurrency: round(r.speedup, 2) for r in rows
    }
    benchmark.extra_info["trip_ratios"] = {
        r.concurrency: round(r.trip_ratio, 2) for r in rows
    }
