"""Secure sharded plane benchmark: hierarchical secure aggregation.

Regenerates the ``secure_shards`` experiment (see
``repro/harness/perf.py``) through the registry/cache layer and asserts
the plane's contractual properties.  The headline contract is *exact*
equivalence, floored at **every** (S × K × vector length) point on
every runner: the merged masked group sums, the unmasked decoded
deltas, the step structure, and the boundary-byte meters of the
hierarchical plane — inline and on the process executor — must equal
the single secure plane's with ``==``, no tolerance.  The group-sum
merge reassociates exact uint64 math, so any inequality is a real bug,
never noise.

The speedup floors mirror ``bench_sharding.py``: the modeled S-lane
critical path must beat the serial fold lane decisively once the fold
work spreads over simulation-relevant shard counts, and the process
executor's *measured* wall-clock speedup must clear 1.8x at S=4 — but
only on runners actually exposing ≥ 4 cores
(``SecureShardsResult.cpu_count``); on smaller runners the measured
curve is physically capped near 1x and only the exactness contracts are
enforced, with the measured numbers still recorded in ``extra_info``.
"""

from repro.harness import perf  # noqa: F401  (registers secure_shards)


class TestSecureShardedPlane:
    def test_exactness_and_speedup(self, cached_run, benchmark):
        res = cached_run("secure_shards")
        big = max((p.goal, p.vector_length) for p in res.points)
        by_point = {
            (p.num_shards, p.goal, p.vector_length): p for p in res.points
        }

        for point in res.points:
            where = (
                f"S={point.num_shards}, K={point.goal}, "
                f"len={point.vector_length}"
            )
            # The exactness floors hold at every point and on every
            # runner — they are the contract, not a perf property.
            assert point.bit_identical, (
                f"{where}: hierarchical plane not bit-identical to the "
                "single secure plane (state or step structure)"
            )
            assert point.boundary_match, (
                f"{where}: boundary-byte meters diverged from the "
                "single secure plane"
            )
            assert point.process_fallbacks == 0, (
                f"{where}: process executor fell back "
                f"{point.process_fallbacks}x in a clean run"
            )
            key = f"s{point.num_shards}_k{point.goal}_l{point.vector_length}"
            benchmark.extra_info[f"modeled_{key}"] = round(point.speedup, 3)
            benchmark.extra_info[f"measured_{key}"] = round(
                point.measured_speedup, 3
            )
            benchmark.extra_info[f"skew_{key}"] = round(point.load_skew, 3)
        benchmark.extra_info["cpu_count"] = res.cpu_count

        # One shard is the single secure plane plus routing and reducer
        # bookkeeping: the serial/S=1 path ratio must stay near 1.
        assert by_point[(1, *big)].speedup >= 0.6

        # Modeled scale-out acceptance on the largest operating point:
        # S=4 lanes must beat the serial fold lane decisively.
        assert by_point[(4, *big)].speedup >= 1.5

        # Hash routing balances lifetime folds near the even share.
        assert by_point[(4, *big)].load_skew <= 1.8

        # Measured multi-core acceptance: only meaningful where the
        # hardware can parallelize (a 1-core runner caps measured near
        # 1x no matter how good the executor is).
        if res.cpu_count >= 4:
            assert by_point[(4, *big)].measured_speedup >= 1.8, (
                f"measured speedup "
                f"{by_point[(4, *big)].measured_speedup:.2f}x at S=4 "
                f"on a {res.cpu_count}-core runner (floor 1.8x)"
            )

        best = max(p.speedup for p in res.points if p.num_shards >= 4)
        benchmark.extra_info["best_modeled_s4plus"] = round(best, 3)
