"""Figure 6 — host↔TEE data-transfer time vs aggregation goal.

Paper claims reproduced here:
* naive TEE aggregation transfers O(K·m): ~650 ms at K=100 and ~6500 ms at
  K=1000 for a 20 MB model (we calibrate to and assert both);
* Asynchronous SecAgg transfers O(K + m): a 16-byte seed per client plus
  one model-sized unmask, nearly flat in K;
* the measured TSA's boundary byte counters actually scale O(K + m) —
  checked against the real protocol implementation, not just the model.
"""

import numpy as np
import pytest

from repro.harness import figure6
from repro.harness.figures import print_figure6
from repro.secagg import run_secure_aggregation


def test_fig6_boundary_cost_model(once, benchmark):
    res = once(figure6)
    print_figure6(res)

    k100 = res.goals.index(100)
    k1000 = res.goals.index(1000)
    assert res.naive_ms[k100] == pytest.approx(650, rel=0.05), "paper: ~650ms at K=100"
    assert res.naive_ms[k1000] == pytest.approx(6500, rel=0.05), "paper: ~6500ms at K=1000"

    # Naive is linear in K; async is nearly flat.
    naive_growth = res.naive_ms[-1] / res.naive_ms[0]
    async_growth = res.async_ms[-1] / res.async_ms[0]
    assert naive_growth == pytest.approx(res.goals[-1] / res.goals[0], rel=0.1)
    assert async_growth < 2.0, "AsyncSecAgg must be ~flat in K"
    assert all(a < n for a, n in zip(res.async_ms, res.naive_ms))

    benchmark.extra_info["naive_ms"] = dict(zip(res.goals, np.round(res.naive_ms, 1)))
    benchmark.extra_info["async_ms"] = dict(zip(res.goals, np.round(res.async_ms, 2)))


def test_fig6_real_tsa_boundary_bytes_scale_k_plus_m(once):
    """The implemented protocol transfers O(K+m), measured in bytes."""

    def run(n_clients, length):
        rng = np.random.default_rng(0)
        updates = [rng.uniform(-1, 1, length) for _ in range(n_clients)]
        _, dep = run_secure_aggregation(updates, seed=1)
        return dep.tsa.boundary_bytes_in, dep.tsa.boundary_bytes_out

    (in_small_m, _), (in_big_m, _) = run(4, 64), run(4, 4096)
    # Input bytes are independent of the model size (seeds only).
    assert in_small_m == in_big_m

    (in_k4, _), (in_k16, _) = once(lambda: (run(4, 256), run(16, 256)))
    # Input bytes are linear in K...
    assert in_k16 == pytest.approx(4 * in_k4, rel=0.01)
    # ...and tiny compared to K models' worth of data.
    model_bytes = 256 * 4
    assert in_k16 < 0.5 * 16 * model_bytes
