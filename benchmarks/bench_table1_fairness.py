"""Table 1 — model quality and fairness under *real* (NumPy-LSTM) training.

Paper claims reproduced here, at reduced scale (hundreds instead of one
million client updates — see EXPERIMENTS.md for the scale discussion):
* wall-clock ordering: SyncFL without over-selection is the slowest by a
  wide margin (paper: 130.6 h vs ~18 h); AsyncFL is at least as fast as
  SyncFL with over-selection;
* fairness: for unbiased methods, heavy-data (99th percentile) clients
  get *better* perplexity than average; over-selection specifically
  degrades the heavy-data percentile relative to the population — the
  paper's headline fairness failure (+50 % on the 99 % slice);
* AsyncFL has the best (lowest) 99 %/All perplexity ratio, over-selection
  the worst.
"""

from repro.harness import table1
from repro.harness.figures import print_table1


def test_table1_fairness_and_time(once, benchmark):
    res = once(table1, update_budget=800, server_lr=0.05, seed=0)
    print_table1(res)

    rows = {r.method: r for r in res.rows}
    no_os, with_os, async_ = rows["sync_no_os"], rows["sync_with_os"], rows["async"]

    # Every method actually trained (well below the untrained ~vocab ppl).
    for r in res.rows:
        assert r.ppl_all < 22.0, f"{r.method} barely trained: {r.ppl_all}"
        assert r.client_updates == 800

    # Wall-clock: sync w/o OS is straggler-bound and much slower.
    assert no_os.time_h > 2.0 * async_.time_h, "paper: ~7-10x slower"
    assert no_os.time_h > with_os.time_h
    assert async_.time_h <= with_os.time_h * 1.2

    # Fairness: unbiased training serves heavy-data clients *better* than
    # average; over-selection flips/narrows that advantage.
    assert no_os.ppl_99 < no_os.ppl_all, "unbiased: heavy clients best served"
    ratio_no_os = no_os.ppl_99 / no_os.ppl_all
    ratio_with_os = with_os.ppl_99 / with_os.ppl_all
    ratio_async = async_.ppl_99 / async_.ppl_all
    assert ratio_with_os > ratio_no_os, "OS must hurt heavy clients relatively"
    assert ratio_async < ratio_with_os, "async avoids the OS fairness penalty"

    # OS damages the 99% slice more than the population on absolute ppl.
    assert (with_os.ppl_99 - no_os.ppl_99) > (with_os.ppl_all - no_os.ppl_all) - 1e-9

    benchmark.extra_info["rows"] = {
        r.method: {
            "ppl_all": round(r.ppl_all, 2),
            "ppl_75": round(r.ppl_75, 2),
            "ppl_99": round(r.ppl_99, 2),
            "time_h": round(r.time_h, 3),
        }
        for r in res.rows
    }
