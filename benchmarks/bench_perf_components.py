"""Component performance micro-benchmarks (true repeated-timing benches).

Not paper figures — these measure the reproduction's own building blocks:
mask expansion throughput, end-to-end SecAgg participation cost, Merkle
proof generation/verification, NumPy-LSTM training step rate, and the
discrete-event engine's event throughput.  Useful for catching
performance regressions in the substrate that every experiment runs on.
"""

import numpy as np

from repro.data import CorpusSpec, FederatedDataset, TopicMarkovCorpus
from repro.nn import LSTMLanguageModel, ModelConfig
from repro.secagg import (
    PowerOfTwoGroup,
    SecAggClient,
    VerifiableLog,
    build_deployment,
    expand_mask,
    verify_inclusion,
)
from repro.sim import Simulator
from repro.utils import child_rng


class TestSecAggPerformance:
    def test_mask_expansion_1m_elements(self, benchmark):
        group = PowerOfTwoGroup(32)
        seed = b"0123456789abcdef"
        out = benchmark(expand_mask, seed, 1_000_000, group)
        assert out.size == 1_000_000

    def test_client_participation_64k_model(self, benchmark):
        dep = build_deployment(vector_length=65_536, threshold=1, seed=0)
        rng = child_rng(0, "bench-client")
        update = rng.uniform(-1, 1, 65_536)

        def participate():
            client = SecAggClient(
                0, dep.codec, dep.authority, dep.tsa.binary_hash,
                dep.tsa.params_hash, child_rng(0, "bench-run"),
            )
            return client.participate(update, dep.server.assign_leg())

        sub = benchmark(participate)
        assert sub.masked_update.size == 65_536

    def test_group_aggregation_throughput(self, benchmark):
        group = PowerOfTwoGroup(32)
        rng = child_rng(1, "bench-agg")
        vectors = [group.random(rng, 262_144) for _ in range(16)]
        out = benchmark(group.sum, vectors)
        assert out.size == 262_144


class TestSecureVsPlainOverhead:
    """What the privacy costs: masked vs plain buffered aggregation."""

    def _drive(self, agg, dim, n_updates):
        from repro.core import TrainingResult

        for cid in range(n_updates):
            version, _ = agg.register_download(cid)
            agg.receive_update(
                TrainingResult(
                    client_id=cid,
                    delta=np.full(dim, 0.01, dtype=np.float32),
                    num_examples=10,
                    train_loss=0.0,
                    initial_version=version,
                )
            )

    def test_plain_fedbuff_updates(self, benchmark):
        from repro.core import FedBuffAggregator, FedSGD, GlobalModelState

        dim, goal = 4096, 8

        def run():
            state = GlobalModelState(np.zeros(dim, np.float32), FedSGD())
            agg = FedBuffAggregator(state, goal=goal)
            self._drive(agg, dim, 2 * goal)
            return agg.version

        assert benchmark(run) == 2

    def test_secure_fedbuff_updates(self, benchmark):
        from repro.core import FedSGD, GlobalModelState
        from repro.system import SecureBufferedAggregator

        dim, goal = 4096, 8

        def run():
            state = GlobalModelState(np.zeros(dim, np.float32), FedSGD())
            agg = SecureBufferedAggregator(state, goal=goal, vector_length=dim, seed=0)
            self._drive(agg, dim, 2 * goal)
            return agg.version

        assert benchmark.pedantic(run, rounds=3, iterations=1) == 2


class TestMerklePerformance:
    def test_proof_generation_1k_log(self, benchmark):
        log = VerifiableLog()
        for i in range(1024):
            log.append(f"entry-{i}".encode())
        proof = benchmark(log.inclusion_proof, 513)
        assert len(proof) == 10  # log2(1024)

    def test_proof_verification(self, benchmark):
        log = VerifiableLog()
        for i in range(1024):
            log.append(f"entry-{i}".encode())
        proof = log.inclusion_proof(513)
        root = log.root()
        ok = benchmark(verify_inclusion, log.entry(513), 513, 1024, proof, root)
        assert ok


class TestTrainingPerformance:
    def test_lstm_loss_and_grad_step(self, benchmark):
        model = LSTMLanguageModel(ModelConfig(vocab_size=64, embed_dim=16,
                                              hidden_dim=32), seed=0)
        corpus = TopicMarkovCorpus(CorpusSpec(vocab_size=64, seq_len=16), seed=0)
        fd = FederatedDataset(corpus)
        ds = fd.client_dataset(0, 40)
        x, y = ds.train_x[:32], ds.train_y[:32]
        loss, grad = benchmark(model.loss_and_grad, x, y)
        assert np.isfinite(loss) and np.isfinite(grad).all()


class TestEnginePerformance:
    def test_event_throughput_100k(self, benchmark):
        def run_100k():
            sim = Simulator()
            count = [0]

            def tick():
                count[0] += 1
                if count[0] < 100_000:
                    sim.schedule(1.0, tick)

            sim.schedule(0.0, tick)
            sim.run_until_idle(max_events=200_000)
            return count[0]

        assert benchmark(run_100k) == 100_000
