"""Million-client fleet benchmark: per-event cost flatness + throughput floor.

Regenerates the ``million`` experiment (see ``repro/harness/perf.py``)
through the registry/cache layer: the columnar struct-of-arrays fleet
driven by the batched tick loop over the calendar-queue engine, swept
from 10k to 1M devices with demand scaling alongside the population.

The floors are deliberately far below locally measured values (~40-85k
events/sec and flatness ~1.2-2x on a dev machine): shared CI runners are
slow and noisy, so the benchmark must fail only on real regressions —
an events/sec collapse or per-event cost that *grows* with fleet size
(the object-per-device failure mode this subsystem replaced).  Measured
values land in ``extra_info`` so the artifact tracks the true trajectory.
"""

from repro.harness import perf  # noqa: F401  (registers the million experiment)


class TestMillionFleet:
    def test_per_event_cost_flat_and_bounded(self, cached_run, benchmark):
        res = cached_run("million")
        assert [p.population for p in res.points] == [10_000, 100_000, 1_000_000]

        for p in res.points:
            benchmark.extra_info[f"events_per_sec_{p.population}"] = round(
                p.events_per_sec
            )
            benchmark.extra_info[f"us_per_event_{p.population}"] = round(
                p.us_per_event, 2
            )
            # Each point must do real work: the fleet checked in and
            # completed sessions at every population size.
            assert p.sessions > 0
            assert p.events >= p.sessions
        benchmark.extra_info["flatness"] = round(res.flatness, 3)

        # Throughput floor: even loaded CI runners clear ~8k events/sec
        # when per-event cost is O(1) (locally 40-85k idle, ~6-22k under
        # heavy contention).
        for p in res.points:
            assert p.events_per_sec >= 8_000, (
                f"pop={p.population}: {p.events_per_sec:,.0f} events/sec "
                "is below the 8k floor"
            )

        # Flatness floor: per-event cost may wobble with cache effects
        # and runner noise but must not scale with the population (100x
        # fleet growth, <5x per-event cost; locally ~1.2-2x idle — an
        # O(N) event loop would show ~100x here).
        assert res.flatness <= 5.0, (
            f"per-event cost grew {res.flatness:.2f}x across 10k→1M devices"
        )

        # Bounded tracing: the 1M point recorded every participation in
        # the exact tallies while holding at most max_records objects.
        largest = res.points[-1]
        assert largest.trace_records <= res.max_trace_records
        assert largest.total_participations >= largest.trace_records

        # The struct-of-arrays fleet stays compact: ~50 bytes/device.
        assert largest.columns_mb < 100.0
