"""Figure 11 — over-selection biases who gets aggregated; AsyncFL does not.

Paper claims reproduced here (two-sample KS tests against the ground
truth, which is SyncFL without over-selection):
* AsyncFL's aggregated-participant distributions (execution time and
  example count) are statistically indistinguishable from the ground
  truth (paper: D = 8.8e-4, p = 0.98);
* SyncFL with over-selection is distinguishable (paper: D = 6.6e-2,
  p = 0.0) — it systematically drops slow clients, which are also the
  clients with the most data.
"""

import numpy as np

from repro.harness import SMOKE, figure11
from repro.harness.figures import print_figure11


def test_fig11_sampling_bias(once, benchmark):
    res = once(figure11, scale=SMOKE)
    print_figure11(res)

    # AsyncFL matches the unbiased reference...
    assert res.ks_async_exec.matches(alpha=0.01), "async exec dist must match truth"
    assert res.ks_async_examples.matches(alpha=0.01)
    # ...over-selection does not.
    assert not res.ks_sync_os_exec.matches(alpha=0.01), "OS must be detectably biased"
    assert not res.ks_sync_os_examples.matches(alpha=0.01)
    # Effect sizes ordered as in the paper: D(async) << D(sync w/ OS).
    assert res.ks_sync_os_exec.statistic > 4 * res.ks_async_exec.statistic

    # Mechanism: OS drops slow clients and (correlated) data-rich clients.
    assert res.sync_os_exec.mean() < res.truth_exec.mean()
    assert res.sync_os_examples.mean() < res.truth_examples.mean()
    # Async preserves both means.
    assert abs(res.async_exec.mean() - res.truth_exec.mean()) < 0.15 * res.truth_exec.mean()

    benchmark.extra_info["D_async_exec"] = round(res.ks_async_exec.statistic, 4)
    benchmark.extra_info["D_sync_os_exec"] = round(res.ks_sync_os_exec.statistic, 4)
    benchmark.extra_info["p_async_exec"] = round(res.ks_async_exec.pvalue, 4)
    benchmark.extra_info["p_sync_os_exec"] = float(
        np.format_float_scientific(res.ks_sync_os_exec.pvalue, 2)
    )
