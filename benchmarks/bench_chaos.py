"""Chaos floors: recovery contracts under the canned fault schedules.

The ``chaos`` experiment runs every canned fault schedule against the
single and sharded planes and measures goodput retention, recovery
time, and the conservation contracts.  This bench pins the floors the
fault-injection plane promises — a regression in failover, the upload
gate, or the retry policies fails CI here rather than drifting a
dashboard:

* device conservation and update conservation hold in *every* cell
  (``unaccounted == 0``: no aggregated update lost or double-counted);
* every non-empty schedule replays bit-identically (same spec + seed +
  schedule → the same trace);
* goodput retention stays above a floor — faults cost throughput, they
  must not collapse it;
* the first server step after the last fault window closes arrives
  within a bounded recovery time.
"""

from repro.harness.report import print_table

GOODPUT_FLOOR = 0.75
RECOVERY_CEILING_S = 300.0


class TestChaosContracts:
    def test_recovery_floors_hold_across_the_grid(self, cached_run, benchmark):
        res = cached_run("chaos")
        assert res.points, "chaos grid produced no cells"

        print_table(
            ["schedule", "plane", "goodput", "recovery (s)", "lost buf",
             "replay"],
            [[p.schedule, p.plane, p.goodput_retention,
              "n/a" if p.recovery_s is None else p.recovery_s,
              p.lost_buffered,
              "n/a" if p.replay_identical is None else p.replay_identical]
             for p in res.points],
            title="Chaos floors",
        )

        for p in res.points:
            cell = f"{p.schedule}/{p.plane}"
            assert p.device_conservation_ok, f"{cell}: device conservation violated"
            assert p.updates_conservation_ok, f"{cell}: update conservation violated"
            assert p.unaccounted == 0, (
                f"{cell}: {p.unaccounted} updates unaccounted for"
            )
            if p.schedule == "none":
                assert p.goodput_retention == 1.0
                continue
            assert p.replay_identical is True, (
                f"{cell}: fault schedule did not replay bit-identically"
            )
            assert p.goodput_retention >= GOODPUT_FLOOR, (
                f"{cell}: goodput retention {p.goodput_retention:.3f} "
                f"below floor {GOODPUT_FLOOR}"
            )
            assert p.recovery_s is not None and p.recovery_s <= RECOVERY_CEILING_S, (
                f"{cell}: recovery took {p.recovery_s} s "
                f"(ceiling {RECOVERY_CEILING_S} s)"
            )

        faulted = [p for p in res.points if p.schedule != "none"]
        benchmark.extra_info["cells"] = len(res.points)
        benchmark.extra_info["min_goodput_retention"] = min(
            p.goodput_retention for p in faulted
        )
        benchmark.extra_info["max_recovery_s"] = max(
            p.recovery_s for p in faulted if p.recovery_s is not None
        )
