"""Figure 3 — SyncFL hits a scaling wall as concurrency grows.

Paper claims reproduced here (SyncFL-only concurrency sweep):
* time-to-target falls quickly at first, then plateaus (diminishing
  returns: the last doubling buys much less than the first);
* communication trips to reach the target grow sharply with concurrency
  (the paper's 1300→2600 doubling costs +73 % trips for −17 % time).
"""

from repro.harness import SMOKE, figure3
from repro.harness.figures import print_figure3


def test_fig3_syncfl_scaling_limits(once, benchmark):
    res = once(figure3, scale=SMOKE)
    print_figure3(res)

    pts = [p for p in res.points if p.time_to_target_h is not None]
    assert len(pts) >= 3, "sweep points must reach the target"
    times = [p.time_to_target_h for p in pts]
    trips = [p.comm_trips for p in pts]

    # Time decreases with concurrency overall...
    assert times[-1] < times[0]
    # ...but with diminishing returns: the first concurrency doubling
    # helps proportionally more than the last one.
    first_gain = times[0] / times[1]
    last_gain = times[-2] / times[-1]
    assert first_gain > last_gain, (
        f"expected plateau: first doubling {first_gain:.2f}x vs "
        f"last {last_gain:.2f}x"
    )
    # Communication cost rises with concurrency.
    assert trips[-1] > trips[0] * 1.3

    benchmark.extra_info["hours_by_concurrency"] = {
        p.concurrency: round(p.time_to_target_h, 3) for p in pts
    }
    benchmark.extra_info["trips_by_concurrency"] = {
        p.concurrency: p.comm_trips for p in pts
    }
