"""Figure 10 — the aggregation goal K controls the speed/steps trade-off.

Paper claims reproduced here (fixed concurrency, K swept up to C):
* larger K → fewer server model updates per hour (inverse relationship);
* larger K → slower convergence to the target loss (the server takes
  bigger but less frequent steps, and large cohorts waste updates).
"""


from repro.harness import SMOKE, figure10
from repro.harness.figures import print_figure10


def test_fig10_goal_sweep(once, benchmark):
    res = once(figure10, scale=SMOKE)
    print_figure10(res)

    rows = [r for r in res.rows if r.time_to_target_h is not None]
    assert len(rows) >= 3

    goals = [r.goal for r in rows]
    times = [r.time_to_target_h for r in rows]
    rates = [r.steps_per_hour for r in rows]

    # Server step frequency falls as K grows, ~inversely.
    assert all(a > b for a, b in zip(rates, rates[1:]))
    inv = rates[0] / rates[-1]
    assert inv > 0.5 * (goals[-1] / goals[0])

    # Convergence time increases with K (monotone up to simulation noise:
    # compare the ends of the sweep).
    assert times[-1] > times[0], "paper: larger K is slower"

    benchmark.extra_info["hours_by_goal"] = {
        r.goal: round(r.time_to_target_h, 3) for r in rows
    }
    benchmark.extra_info["steps_per_hour_by_goal"] = {
        r.goal: round(r.steps_per_hour, 1) for r in rows
    }
