"""Figure 13 — hours to target for the four FL design configurations.

Paper claims reproduced here:
* AsyncFL with small K is the fastest configuration (paper: 4.3× faster
  than SyncFL with over-selection; about half the speedup from frequent
  steps, half from avoiding sampling bias);
* SyncFL without over-selection is by far the slowest (paper: ~10×
  slower than AsyncFL — the full straggler penalty);
* ordering: async small K < async big K < sync w/ OS < sync w/o OS.
"""

from repro.harness import SMOKE, figure13
from repro.harness.figures import print_figure13


def test_fig13_design_ablation(once, benchmark):
    res = once(figure13, scale=SMOKE)
    print_figure13(res)

    h = res.hours
    for name, value in h.items():
        assert value is not None, f"{name} never reached the target"

    assert h["async_small_k"] < h["async_big_k"] < h["sync_without_os"]
    assert h["sync_with_os"] < h["sync_without_os"]
    assert h["async_small_k"] < h["sync_with_os"]

    # Magnitudes: async-vs-sync-with-OS should be a clear multiple (the
    # paper's 4.3x), and sync-without-OS should be dramatically slower.
    speedup_vs_os = h["sync_with_os"] / h["async_small_k"]
    slowdown_no_os = h["sync_without_os"] / h["async_small_k"]
    assert speedup_vs_os > 1.5
    assert slowdown_no_os > 4.0

    benchmark.extra_info["hours"] = {k: round(v, 3) for k, v in h.items()}
    benchmark.extra_info["speedup_vs_sync_os"] = round(speedup_vs_os, 2)
    benchmark.extra_info["slowdown_sync_no_os"] = round(slowdown_no_os, 2)
