"""Figure 2 — client execution-time heterogeneity and the straggler gap.

Paper claims reproduced here:
* per-client training time spans more than two orders of magnitude;
* at concurrency = aggregation goal = 1000, the mean SyncFL round duration
  is ~21× the mean client execution time (we assert ≥ 10× and ≤ 60×:
  same order, straggler-dominated).
"""

from repro.harness import figure2
from repro.harness.figures import print_figure2


def test_fig2_execution_time_distribution(once, benchmark):
    res = once(figure2, cohort=1000, n_hist_samples=20_000, n_rounds=20)
    print_figure2(res)

    assert res.spread_orders_of_magnitude > 2.0, "paper: spread > 2 orders"
    assert res.mean_client_s > res.median_client_s, "heavy right tail"
    ratio = res.round_to_client_ratio
    assert 10.0 <= ratio <= 60.0, f"paper: ~21x straggler gap, got {ratio:.1f}x"

    benchmark.extra_info["round_to_client_ratio"] = round(ratio, 2)
    benchmark.extra_info["spread_orders"] = round(res.spread_orders_of_magnitude, 2)
    benchmark.extra_info["mean_client_s"] = round(res.mean_client_s, 2)


def test_fig2_histogram_mass_is_normalized(once):
    res = once(figure2, cohort=200, n_hist_samples=5_000, n_rounds=5)
    assert res.density.max() == 1.0
    assert (res.density >= 0).all()
    assert len(res.bin_edges) == len(res.density) + 1
