"""Figure 7 — AsyncFL sustains high client utilization; SyncFL sawtooths.

Paper claims reproduced here (both at the same max concurrency):
* AsyncFL keeps the number of active clients roughly constant near the
  concurrency cap ("close to 100%");
* SyncFL's active-client count rises at round start and drains toward the
  end (stragglers), so its mean utilization is substantially lower and its
  variance higher.
"""


from repro.harness import SMOKE, figure7
from repro.harness.figures import print_figure7


def test_fig7_async_utilization_beats_sync(once, benchmark):
    res = once(figure7, scale=SMOKE)
    print_figure7(res)

    assert res.async_utilization > 0.75, "async should run near the cap"
    assert res.async_utilization > res.sync_utilization + 0.15, (
        f"async {res.async_utilization:.2f} must clearly beat "
        f"sync {res.sync_utilization:.2f}"
    )

    # Sawtooth vs flat: compare variability of the active-client series
    # after warm-up, normalized by their means.
    def cv(times, counts):
        mask = times > times.max() * 0.3
        vals = counts[mask].astype(float)
        return vals.std() / max(vals.mean(), 1e-9)

    sync_cv = cv(res.sync_times, res.sync_active)
    async_cv = cv(res.async_times, res.async_active)
    assert sync_cv > 1.5 * async_cv, (
        f"sync series must fluctuate more (cv {sync_cv:.2f} vs {async_cv:.2f})"
    )

    benchmark.extra_info["async_utilization"] = round(res.async_utilization, 3)
    benchmark.extra_info["sync_utilization"] = round(res.sync_utilization, 3)
    benchmark.extra_info["sync_cv"] = round(sync_cv, 3)
    benchmark.extra_info["async_cv"] = round(async_cv, 3)


def test_fig7_concurrency_cap_respected(once):
    res = once(figure7, scale=SMOKE, duration_h=0.5)
    assert res.async_active.max() <= res.concurrency
    assert res.sync_active.max() <= res.concurrency
