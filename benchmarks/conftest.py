"""Shared configuration for the paper-reproduction benchmarks.

Every ``bench_fig*`` / ``bench_table1`` module regenerates one figure or
table of the paper at the SMOKE scale (concurrency and goals divided by
~40 relative to the paper; shapes are scale-free), prints the rows/series,
asserts the paper's qualitative claims, and records headline numbers in
``benchmark.extra_info`` so they land in the JSON report.

Run with::

    pytest benchmarks/ --benchmark-only

Use the harness directly (``repro.harness``) with ``DEFAULT`` or ``PAPER``
scales for higher-fidelity regeneration.

When ``$REPRO_SWEEP_CACHE`` is set (CI does this), the ``cached_run``
fixture serves experiment results from the content-addressed sweep cache
(see ``repro.harness.cache``): a benchmark whose cell was already produced
by ``python -m repro.harness sweep`` only pays for JSON deserialization,
and cells computed here are stored back for the sweep jobs to reuse.
"""

import os
import time

import pytest

from repro.harness import SMOKE, registry
from repro.harness.cache import CACHE_ENV_VAR, ResultCache, cell_fingerprint
from repro.harness.sweep import SweepCell, cell_payload


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    Experiment regenerators are deterministic and expensive; multiple
    timing rounds would only repeat identical work.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run


@pytest.fixture
def cached_run(benchmark):
    """Run a registered experiment, consulting the sweep result cache.

    ``cached_run("fig9")`` dispatches through the experiment registry.
    Without ``$REPRO_SWEEP_CACHE`` in the environment this is exactly
    ``once(spec.run, SMOKE, seed)``; with it, cache hits skip the
    simulation (the timer then measures deserialization) and misses are
    stored for subsequent sweep/benchmark runs.  ``extra_info`` records
    which path was taken so the JSON report stays honest.
    """

    def _run(name, scale=SMOKE, seed=0, **params):
        spec = registry.get(name)
        root = os.environ.get(CACHE_ENV_VAR)
        if not root:
            return run_once(benchmark, spec.run, scale, seed, **params)
        cache = ResultCache(root)
        fp = cell_fingerprint(name, scale, seed, params)
        payload = cache.load(fp)
        if payload is not None:
            benchmark.extra_info["sweep_cache"] = "hit"
            return run_once(benchmark, spec.deserialize, payload["result"])
        benchmark.extra_info["sweep_cache"] = "miss"
        start = time.perf_counter()
        result = run_once(benchmark, spec.run, scale, seed, **params)
        cell = SweepCell(name, scale, seed, tuple(sorted(params.items())))
        cache.store(fp, cell_payload(cell, result, time.perf_counter() - start))
        return result

    return _run
