"""Shared configuration for the paper-reproduction benchmarks.

Every ``bench_fig*`` / ``bench_table1`` module regenerates one figure or
table of the paper at the SMOKE scale (concurrency and goals divided by
~40 relative to the paper; shapes are scale-free), prints the rows/series,
asserts the paper's qualitative claims, and records headline numbers in
``benchmark.extra_info`` so they land in the JSON report.

Run with::

    pytest benchmarks/ --benchmark-only

Use the harness directly (``repro.harness``) with ``DEFAULT`` or ``PAPER``
scales for higher-fidelity regeneration.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    Experiment regenerators are deterministic and expensive; multiple
    timing rounds would only repeat identical work.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
