"""Sharded aggregation plane benchmark: critical path vs single aggregator.

Regenerates the ``shards`` experiment (see ``repro/harness/perf.py``)
through the registry/cache layer and asserts the plane's contractual
properties: differential equivalence at every (shard count × population)
point — matching step structure and final-model divergence within the
float32-cast bound — and a decisive critical-path speedup once the fold
work spreads over simulation-relevant shard counts.

The speedup floors are deliberately below the locally measured values
(~2.4x at S=4 rising to ~3.1-3.2x at S=8 on the 50k-parameter stream):
shared CI runners are noisy and the lane model charges *measured* fold
costs, so the benchmark must fail only on real regressions.  The
measured curve lands in ``extra_info`` so the artifact tracks the true
trajectory per run.

The process-executor arm (real worker processes over shared memory)
adds two contractual checks: its final state must be *bit-identical* to
the inline sharded plane at every point and on every runner, and its
*measured* wall-clock speedup must clear 1.8x at S=4 on the large
population — but only when the runner actually exposes ≥ 4 cores
(``ShardsResult.cpu_count``); on smaller runners the measured curve is
physically capped near 1x and only the bit-identity contract is
enforced, with the measured numbers still recorded in ``extra_info``.
"""

from repro.harness import perf  # noqa: F401  (registers the shards experiment)


class TestShardedPlane:
    def test_shard_speedup_and_equivalence(self, cached_run, benchmark):
        res = cached_run("shards")
        large_pop = max(p.population for p in res.points)
        by_point = {(p.num_shards, p.population): p for p in res.points}

        for point in res.points:
            assert point.equivalent, (
                f"S={point.num_shards}, pop={point.population}: divergence "
                f"{point.max_divergence:.2e} or step-structure mismatch"
            )
            assert point.process_identical, (
                f"S={point.num_shards}, pop={point.population}: process "
                "executor diverged from the inline sharded plane"
            )
            key = f"s{point.num_shards}_pop{point.population}"
            benchmark.extra_info[f"speedup_{key}"] = round(point.speedup, 3)
            benchmark.extra_info[f"measured_{key}"] = round(
                point.measured_speedup, 3
            )
            benchmark.extra_info[f"gap_{key}"] = round(point.speedup_gap, 3)
            benchmark.extra_info[f"skew_{key}"] = round(point.load_skew, 3)
        benchmark.extra_info["cpu_count"] = res.cpu_count

        # One shard is the single plane plus lane bookkeeping: it must
        # not cost a meaningful constant factor.
        assert by_point[(1, large_pop)].speedup >= 0.6

        # The acceptance floors: scale-out must be decisive on the
        # large-population operating point (locally ~2.4x / ~3.1x).
        assert by_point[(4, large_pop)].speedup >= 1.5
        assert by_point[(8, large_pop)].speedup >= 2.0

        # Hash routing over a large population balances the shards:
        # lifetime folds stay near the ideal even share.
        assert by_point[(8, large_pop)].load_skew <= 1.8

        # Measured multi-core acceptance: only meaningful where the
        # hardware can parallelize (a 1-core runner caps measured near
        # 1x no matter how good the executor is).
        if res.cpu_count >= 4:
            assert by_point[(4, large_pop)].measured_speedup >= 1.8, (
                f"measured speedup "
                f"{by_point[(4, large_pop)].measured_speedup:.2f}x at S=4 "
                f"on a {res.cpu_count}-core runner (floor 1.8x)"
            )

        best = max(p.speedup for p in res.points if p.num_shards >= 4)
        benchmark.extra_info["best_speedup_s4plus"] = round(best, 3)
