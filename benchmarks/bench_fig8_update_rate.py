"""Figure 8 — server model updates per hour vs concurrency.

Paper claims reproduced here:
* with the aggregation goal fixed (K=100 in the paper), AsyncFL's server
  update rate grows ~linearly with concurrency;
* SyncFL's update rate stays ~flat (its goal grows with concurrency and
  rounds are straggler-bound), so the async/sync ratio widens with
  concurrency — ~30× at the top of the paper's sweep; we assert it keeps
  growing and exceeds 10× at the top of the scaled sweep.
"""

import numpy as np

from repro.harness import SMOKE, figure8
from repro.harness.figures import print_figure8


def test_fig8_update_rate_scaling(once, benchmark):
    res = once(figure8, scale=SMOKE)
    print_figure8(res)

    conc = np.array(res.concurrencies, dtype=float)
    async_rate = np.array(res.async_steps_per_hour)
    sync_rate = np.array(res.sync_steps_per_hour)

    # Async rate grows ~linearly with concurrency: doubling concurrency
    # should come close to doubling the rate.
    growth = async_rate[1:] / async_rate[:-1]
    conc_growth = conc[1:] / conc[:-1]
    assert np.all(growth > 0.6 * conc_growth), f"sublinear async scaling: {growth}"

    # Sync rate is ~flat across the sweep.
    assert sync_rate.max() < 2.0 * max(sync_rate.min(), 1e-9)

    # The ratio widens with concurrency and is large at the top.
    ratios = async_rate / sync_rate
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 10.0, f"paper: ~30x at the top; got {ratios[-1]:.1f}x"

    benchmark.extra_info["async_steps_per_hour"] = dict(
        zip(res.concurrencies, np.round(async_rate, 1))
    )
    benchmark.extra_info["sync_steps_per_hour"] = dict(
        zip(res.concurrencies, np.round(sync_rate, 1))
    )
    benchmark.extra_info["top_ratio"] = round(float(ratios[-1]), 1)
