"""Figure 12 — decomposing AsyncFL's advantage via four training curves.

Paper claims reproduced here (all at the same max concurrency; the
"big" goal equals the sync round size, the "small" goal is the paper's
K=100 analogue):
* best-to-worst at any late time point: AsyncFL small K, AsyncFL big K,
  SyncFL with over-selection, SyncFL without over-selection;
* the async-small-K vs async-big-K gap isolates the frequent-server-step
  advantage; the async-big-K vs sync-with-OS gap isolates the
  sampling-bias cost; the sync-without-OS curve shows the straggler cost.
"""

import numpy as np

from repro.harness import SMOKE, figure12
from repro.harness.figures import print_figure12


def _loss_at(times, losses, t):
    """Loss of a curve at time t (step interpolation)."""
    idx = np.searchsorted(times, t, side="right") - 1
    return float(losses[max(idx, 0)])


def test_fig12_training_curves_ordering(once, benchmark):
    res = once(figure12, scale=SMOKE)
    print_figure12(res)

    curves = res.curves
    assert set(curves) == {
        "async_small_k", "async_big_k", "sync_with_os", "sync_without_os"
    }
    for name, (times, losses) in curves.items():
        assert len(times) >= 3, f"{name} produced too few steps"
        assert losses[-1] < losses[0], f"{name} did not train"

    # Compare at a late common time point (the paper reads the 10-hour mark).
    t_eval = min(t[-1] for t, _ in curves.values()) * 0.9
    at = {name: _loss_at(t, l, t_eval) for name, (t, l) in curves.items()}

    assert at["async_small_k"] <= at["async_big_k"], "frequent steps must help"
    assert at["async_big_k"] <= at["sync_with_os"] + 1e-9, "avoiding bias must help"
    assert at["sync_with_os"] < at["sync_without_os"], "stragglers must hurt most"

    # Step counts mirror the frequency argument.
    assert len(curves["async_small_k"][0]) > 2 * len(curves["async_big_k"][0])
    assert len(curves["async_big_k"][0]) >= len(curves["sync_with_os"][0])

    benchmark.extra_info["loss_at_common_time"] = {
        k: round(v, 4) for k, v in at.items()
    }
    benchmark.extra_info["server_steps"] = {
        k: len(t) for k, (t, _) in curves.items()
    }
