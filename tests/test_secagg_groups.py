"""Tests for the finite group, fixed-point codec, PRNG masks, and OTP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.secagg import (
    FixedPointCodec,
    FixedPointOverflowError,
    PowerOfTwoGroup,
    SEED_BYTES,
    expand_mask,
    generate_seed,
    otp_add,
    otp_decrypt_sum,
    otp_encrypt,
    recommend_codec,
)
from repro.utils import child_rng


@pytest.fixture(params=[16, 32, 64])
def group(request):
    return PowerOfTwoGroup(request.param)


class TestGroup:
    def test_add_wraps(self):
        g = PowerOfTwoGroup(8)
        a = g.reduce(np.array([250], dtype=np.uint64))
        b = g.reduce(np.array([10], dtype=np.uint64))
        np.testing.assert_array_equal(g.add(a, b), [4])

    def test_identity(self, group):
        rng = child_rng(0, "grp")
        a = group.random(rng, 16)
        np.testing.assert_array_equal(group.add(a, group.zeros(16)), a)

    def test_inverse(self, group):
        rng = child_rng(1, "grp")
        a = group.random(rng, 16)
        np.testing.assert_array_equal(group.add(a, group.neg(a)), group.zeros(16))

    def test_sub_is_add_neg(self, group):
        rng = child_rng(2, "grp")
        a, b = group.random(rng, 8), group.random(rng, 8)
        np.testing.assert_array_equal(group.sub(a, b), group.add(a, group.neg(b)))

    def test_commutative_associative(self, group):
        rng = child_rng(3, "grp")
        a, b, c = (group.random(rng, 8) for _ in range(3))
        np.testing.assert_array_equal(group.add(a, b), group.add(b, a))
        np.testing.assert_array_equal(
            group.add(group.add(a, b), c), group.add(a, group.add(b, c))
        )

    def test_scale_matches_repeated_addition(self, group):
        rng = child_rng(4, "grp")
        a = group.random(rng, 8)
        acc = group.zeros(8)
        for _ in range(7):
            acc = group.add(acc, a)
        np.testing.assert_array_equal(group.scale(a, 7), acc)

    def test_scale_zero_and_order(self, group):
        rng = child_rng(5, "grp")
        a = group.random(rng, 4)
        np.testing.assert_array_equal(group.scale(a, 0), group.zeros(4))
        np.testing.assert_array_equal(group.scale(a, group.order), group.zeros(4))

    def test_scale_large_weight_exact(self):
        # Weight bigger than 2^32 in a 32-bit group must still be exact.
        g = PowerOfTwoGroup(32)
        a = g.reduce(np.array([123456789], dtype=np.uint64))
        k = 2**35 + 12345
        expected = (123456789 * k) % g.order
        np.testing.assert_array_equal(g.scale(a, k), [expected])

    def test_sum_of_vectors(self, group):
        rng = child_rng(6, "grp")
        vs = [group.random(rng, 8) for _ in range(5)]
        manual = group.zeros(8)
        for v in vs:
            manual = group.add(manual, v)
        np.testing.assert_array_equal(group.sum(vs), manual)

    def test_sum_empty(self, group):
        assert group.sum([]).size == 0

    def test_dtype_enforced(self, group):
        bad = np.zeros(4, dtype=np.float32)
        with pytest.raises(TypeError):
            group.add(bad, bad)

    def test_random_in_range(self, group):
        a = group.random(child_rng(7, "grp"), 1000)
        assert int(a.max()) < group.order

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            PowerOfTwoGroup(0)
        with pytest.raises(ValueError):
            PowerOfTwoGroup(65)

    def test_equality(self):
        assert PowerOfTwoGroup(32) == PowerOfTwoGroup(32)
        assert PowerOfTwoGroup(32) != PowerOfTwoGroup(16)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 64), st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1))
    def test_add_matches_python_mod(self, bits, x, y):
        g = PowerOfTwoGroup(bits)
        a = g.reduce(np.array([x], dtype=np.uint64))
        b = g.reduce(np.array([y], dtype=np.uint64))
        assert int(g.add(a, b)[0]) == (x + y) % g.order


class TestFixedPoint:
    def test_roundtrip_resolution(self):
        codec = FixedPointCodec(PowerOfTwoGroup(32), scale=2**16)
        v = np.array([0.5, -0.25, 0.0, 1.0 / 65536])
        out = codec.decode(codec.encode(v))
        np.testing.assert_allclose(out, v, atol=1.0 / 2**16)

    def test_negative_values_roundtrip(self):
        codec = FixedPointCodec(PowerOfTwoGroup(32), scale=2**10)
        v = np.array([-100.0, -0.001, 99.5])
        np.testing.assert_allclose(codec.decode(codec.encode(v)), v, atol=2.0 / 2**10)

    def test_sum_in_group_equals_real_sum(self):
        g = PowerOfTwoGroup(32)
        codec = FixedPointCodec(g, scale=2**12)
        rng = child_rng(0, "fp")
        vs = [rng.uniform(-1, 1, 32) for _ in range(10)]
        enc_sum = g.sum([codec.encode(v) for v in vs])
        real_sum = np.sum(vs, axis=0)
        np.testing.assert_allclose(codec.decode(enc_sum), real_sum, atol=10 * 2 / 2**12)

    def test_overflow_detected_on_encode(self):
        codec = FixedPointCodec(PowerOfTwoGroup(16), scale=2**10)
        with pytest.raises(FixedPointOverflowError):
            codec.encode(np.array([100.0]))  # 100*1024 > 2^15

    def test_clip_prevents_overflow(self):
        codec = FixedPointCodec(PowerOfTwoGroup(16), scale=2**10, clip_value=10.0)
        out = codec.decode(codec.encode(np.array([100.0])))
        assert out[0] == pytest.approx(10.0)

    def test_max_summands_budget(self):
        codec = FixedPointCodec(PowerOfTwoGroup(32), scale=2**16)
        n = codec.max_summands(max_abs=1.0)
        # n values of magnitude 1.0 at scale 2^16 must fit in 2^31.
        assert n * 2**16 <= 2**31 - 1
        assert (n + 2) * 2**16 > 2**31 - 1

    def test_decode_sum_rejects_unsound_workload(self):
        codec = FixedPointCodec(PowerOfTwoGroup(16), scale=2**8)
        enc = codec.encode(np.array([0.0]))
        with pytest.raises(FixedPointOverflowError):
            codec.decode_sum(enc, num_summands=10_000, max_abs=1.0)

    def test_decode_sum_accepts_sound_workload(self):
        g = PowerOfTwoGroup(32)
        codec = FixedPointCodec(g, scale=2**8)
        vs = [np.array([1.0]), np.array([-0.5])]
        enc = g.sum([codec.encode(v) for v in vs])
        out = codec.decode_sum(enc, num_summands=2, max_abs=1.0)
        assert out[0] == pytest.approx(0.5, abs=2 / 2**8)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            FixedPointCodec(PowerOfTwoGroup(32), scale=0)
        with pytest.raises(ValueError):
            FixedPointCodec(PowerOfTwoGroup(32), clip_value=-1)
        codec = FixedPointCodec(PowerOfTwoGroup(32))
        with pytest.raises(ValueError):
            codec.max_summands(0)
        with pytest.raises(ValueError):
            codec.decode_sum(codec.encode(np.zeros(1)), 0, 1.0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(-1.0, 1.0), min_size=1, max_size=20),
    )
    def test_roundtrip_property(self, values):
        codec = FixedPointCodec(PowerOfTwoGroup(32), scale=2**16)
        v = np.array(values)
        np.testing.assert_allclose(codec.decode(codec.encode(v)), v, atol=1.5 / 2**16)


class TestRecommendCodec:
    def test_recommendation_satisfies_workload(self):
        codec = recommend_codec(max_abs=1.0, max_summands=1000, precision=1e-4)
        assert codec.max_summands(1.0) >= 1000
        assert 1.0 / codec.scale <= 1e-4

    def test_sums_are_exact_at_recommended_parameters(self):
        codec = recommend_codec(max_abs=2.0, max_summands=64, precision=1e-3)
        g = codec.group
        rng = child_rng(0, "rec")
        vs = [rng.uniform(-2, 2, 8) for _ in range(64)]
        acc = g.sum([codec.encode(v) for v in vs])
        np.testing.assert_allclose(
            codec.decode(acc), np.sum(vs, axis=0), atol=64 * 1e-3
        )

    def test_weights_expand_the_group(self):
        small = recommend_codec(1.0, 100, 1e-3, max_weight=1)
        big = recommend_codec(1.0, 100, 1e-3, max_weight=10_000)
        assert big.group.bits > small.group.bits

    def test_never_recommends_63_bits(self):
        # Workload engineered to want exactly 63 bits; must bump to 64.
        for summands in (2**40, 2**41, 2**42):
            try:
                codec = recommend_codec(1.0, summands, 1e-4)
            except ValueError:
                continue
            assert codec.group.bits != 63

    def test_impossible_workload_rejected(self):
        with pytest.raises(ValueError, match="bit group"):
            recommend_codec(max_abs=1e6, max_summands=10**12, precision=1e-9)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            recommend_codec(0.0, 10, 1e-4)
        with pytest.raises(ValueError):
            recommend_codec(1.0, 0, 1e-4)
        with pytest.raises(ValueError):
            recommend_codec(1.0, 10, 0.0)


class TestMaskExpansion:
    def test_deterministic(self):
        g = PowerOfTwoGroup(32)
        seed = b"0123456789abcdef"
        np.testing.assert_array_equal(
            expand_mask(seed, 100, g), expand_mask(seed, 100, g)
        )

    def test_different_seeds_differ(self):
        g = PowerOfTwoGroup(32)
        a = expand_mask(b"0123456789abcdef", 100, g)
        b = expand_mask(b"0123456789abcdeg", 100, g)
        assert not np.array_equal(a, b)

    def test_wrong_seed_length_rejected(self):
        with pytest.raises(ValueError):
            expand_mask(b"short", 10, PowerOfTwoGroup(32))

    def test_generate_seed_length_and_determinism(self):
        assert len(generate_seed()) == SEED_BYTES
        rng1 = child_rng(0, "seed")
        rng2 = child_rng(0, "seed")
        assert generate_seed(rng1) == generate_seed(rng2)

    def test_mask_marginals_roughly_uniform(self):
        g = PowerOfTwoGroup(32)
        m = expand_mask(b"0123456789abcdef", 50_000, g)
        # Top bit should be set about half the time.
        frac = float((m >> np.uint32(31)).mean())
        assert 0.47 < frac < 0.53


class TestOTP:
    def test_figure14_roundtrip(self):
        # Enc, homomorphic Add, Dec — the exact scheme of Figure 14.
        g = PowerOfTwoGroup(32)
        rng = child_rng(0, "otp")
        v1, v2 = g.random(rng, 64), g.random(rng, 64)
        s1, s2 = generate_seed(rng), generate_seed(rng)
        c = otp_add(otp_encrypt(v1, s1, g), otp_encrypt(v2, s2, g), g)
        np.testing.assert_array_equal(otp_decrypt_sum(c, [s1, s2], g), g.add(v1, v2))

    def test_single_ciphertext_hides_plaintext(self):
        g = PowerOfTwoGroup(32)
        v = g.zeros(64)  # extremely structured plaintext
        c = otp_encrypt(v, generate_seed(child_rng(1, "otp")), g)
        assert not np.array_equal(c, v)

    def test_wrong_seed_fails_to_decrypt(self):
        g = PowerOfTwoGroup(32)
        rng = child_rng(2, "otp")
        v = g.random(rng, 16)
        s, wrong = generate_seed(rng), generate_seed(rng)
        c = otp_encrypt(v, s, g)
        assert not np.array_equal(otp_decrypt_sum(c, [wrong], g), v)

    def test_many_party_aggregation(self):
        g = PowerOfTwoGroup(32)
        rng = child_rng(3, "otp")
        vs = [g.random(rng, 32) for _ in range(20)]
        seeds = [generate_seed(rng) for _ in range(20)]
        csum = g.sum([otp_encrypt(v, s, g) for v, s in zip(vs, seeds)])
        np.testing.assert_array_equal(otp_decrypt_sum(csum, seeds, g), g.sum(vs))
