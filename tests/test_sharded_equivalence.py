"""Differential equivalence suite: sharded aggregation plane vs single core.

The contract under test (see ``repro/core/sharding.py``): for any shard
count and either routing policy, :class:`ShardedFedBuffAggregator`
matches the single :class:`FedBuffAggregator` on the same arrival
sequence to float64 rounding (shard-local folding only reassociates the
weighted sum; admission, staleness, weighting, and step triggering are
the inherited single-core code), ``num_shards=1`` is **bit-identical**
to the single core on both the scalar and the block path, and mid-run
shard failure leaves the plane matching a single aggregator fed only
the surviving arrivals.  This is what lets the system layer spread one
task's aggregation across nodes without changing an experimental number.
"""

import multiprocessing
import queue as queue_mod

import numpy as np
import pytest

from repro.core.fedbuff import FedBuffAggregator
from repro.core.parallel import (
    ProcessShardedFedBuffAggregator,
    ShardWorkerPool,
    WorkerPoolError,
    _worker_main,
    fold_kernel_names,
    get_fold_kernel,
    numpy_fold_kernel,
    register_fold_kernel,
)
from repro.core.server_opt import FedAdam
from repro.core.sharding import (
    AggregationPlaneClock,
    HashShardRouting,
    LoadAwareShardRouting,
    ShardedFedBuffAggregator,
    _Shard,
    make_routing,
)
from repro.core.state import GlobalModelState
from repro.core.types import TrainingResult

ATOL = 1e-8
P = 48

#: every start method this platform supports out of fork/spawn — the
#: process-executor contract is start-method-independent, so the
#: differential tests run under each (CI exercises both on linux).
START_METHODS = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]


def fresh_state(seed=0):
    rng = np.random.default_rng(seed)
    return GlobalModelState(rng.standard_normal(P).astype(np.float32), FedAdam(lr=0.1))


def make_result(rng, cid, version=0, scale=1.0):
    return TrainingResult(
        client_id=cid,
        delta=(rng.standard_normal(P) * scale).astype(np.float32),
        num_examples=int(rng.integers(1, 50)),
        train_loss=float(rng.random()),
        initial_version=version,
    )


def drive_both(single, sharded, seed=0, n=23, waves=3):
    """Drive identical multi-wave arrival sequences through both planes.

    Clients register in waves (so later waves carry real staleness) and
    upload in a shuffled order; both planes see the same registrations
    and the same arrivals with the same initial versions.
    """
    rng = np.random.default_rng(seed)
    outs_single, outs_sharded = [], []
    next_cid = 0
    for _ in range(waves):
        cids = list(range(next_cid, next_cid + n))
        next_cid += n
        for agg in (single, sharded):
            for cid in cids:
                agg.register_download(cid)
        # Registration versions must have agreed or weights could not.
        assert single.version == sharded.version
        order = rng.permutation(len(cids))
        for idx in order:
            cid = cids[int(idx)]
            version = single._in_flight[cid]
            assert sharded._in_flight[cid] == version
            r = make_result(rng, cid, version=version)
            outs_single.append(single.receive_update(r))
            outs_sharded.append(sharded.receive_update(r))
    return outs_single, outs_sharded


class TestShardRouting:
    def test_hash_routing_is_deterministic_and_total(self):
        shards = [_Shard() for _ in range(5)]
        routing = HashShardRouting()
        first = [routing.route(cid, shards) for cid in range(200)]
        assert first == [routing.route(cid, shards) for cid in range(200)]
        assert set(first) == set(range(5))  # every shard receives a slice

    def test_hash_routing_probes_past_dead_shards(self):
        shards = [_Shard() for _ in range(4)]
        routing = HashShardRouting()
        victim = routing.route(17, shards)
        shards[victim].alive = False
        rerouted = routing.route(17, shards)
        assert rerouted == (victim + 1) % 4
        shards[victim].alive = True
        assert routing.route(17, shards) == victim  # snaps back on revive

    def test_hash_routing_all_dead_raises(self):
        shards = [_Shard() for _ in range(2)]
        for s in shards:
            s.alive = False
        with pytest.raises(RuntimeError):
            HashShardRouting().route(0, shards)

    def test_load_aware_picks_least_loaded_with_lowest_id_ties(self):
        shards = [_Shard() for _ in range(3)]
        routing = LoadAwareShardRouting()
        assert routing.route(99, shards) == 0  # all-zero tie -> lowest id
        shards[0].in_flight = 2
        shards[1].count = 1
        assert routing.route(99, shards) == 2
        shards[2].alive = False
        assert routing.route(99, shards) == 1

    def test_load_aware_all_dead_raises(self):
        shards = [_Shard()]
        shards[0].alive = False
        with pytest.raises(RuntimeError):
            LoadAwareShardRouting().route(0, shards)

    def test_make_routing(self):
        assert make_routing("hash").name == "hash"
        assert make_routing("load").name == "load"
        with pytest.raises(ValueError):
            make_routing("random")


class TestPlaneClock:
    def test_lane_schedule_and_barrier(self):
        clock = AggregationPlaneClock(2)
        clock.record_fold(0, 1.0)
        clock.record_fold(1, 3.0)
        clock.record_fold(0, 1.0)  # lane 0 now at 2.0, lane 1 at 3.0
        assert clock.elapsed == pytest.approx(3.0)
        clock.record_merge(0.5)  # barrier over both lanes
        assert clock.root == pytest.approx(3.5)
        clock.record_fold(0, 1.0)  # next epoch folds start after the merge
        assert clock.lanes[0] == pytest.approx(4.5)
        assert clock.elapsed == pytest.approx(4.5)
        assert clock.folds == 4 and clock.merges == 1

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            AggregationPlaneClock(0)

    def test_block_path_feeds_the_clock(self):
        rng = np.random.default_rng(17)
        clock = AggregationPlaneClock(3)
        agg = ShardedFedBuffAggregator(
            fresh_state(), goal=4, num_shards=3, clock=clock
        )
        results = [make_result(rng, cid) for cid in range(9)]
        for r in results:
            agg.register_download(r.client_id)
        agg.receive_update_block(results)
        assert clock.folds == 9  # grouped folds count every update
        assert clock.merges == 2
        assert clock.elapsed > 0.0


class TestPlaneWideOutage:
    def test_download_during_outage_registers_unrouted(self):
        agg = ShardedFedBuffAggregator(fresh_state(), goal=4, num_shards=2)
        agg.drop_shard(0)
        agg.drop_shard(1)
        # Must not raise: the client registers but gets no shard.
        agg.register_download(5)
        assert agg.shard_of(5) is None
        assert agg.in_flight_count() == 1
        # A direct update for the unrouted client is rejected before any
        # buffer accounting mutates.
        rng = np.random.default_rng(0)
        with pytest.raises(KeyError, match="no shard was live"):
            agg.receive_update(make_result(rng, 5))
        with pytest.raises(KeyError, match="no shard was live"):
            agg.receive_update_block([make_result(rng, 5)])
        assert agg.buffered_count == 0
        assert agg.updates_received == 0
        # client_failed on the unrouted client stays consistent.
        agg.client_failed(5)
        assert agg.in_flight_count() == 0


class TestShardedEquivalence:
    @pytest.mark.parametrize("num_shards", [2, 3, 8])
    @pytest.mark.parametrize("routing", ["hash", "load"])
    def test_matches_single_aggregator(self, num_shards, routing):
        single = FedBuffAggregator(fresh_state(), goal=7)
        sharded = ShardedFedBuffAggregator(
            fresh_state(), goal=7, num_shards=num_shards, routing=routing
        )
        outs_single, outs_sharded = drive_both(single, sharded, seed=num_shards)

        assert single.version == sharded.version
        assert single.updates_received == sharded.updates_received
        assert len(single.step_history) == len(sharded.step_history)
        for a, b in zip(single.step_history, sharded.step_history):
            assert a.version == b.version
            assert a.num_updates == b.num_updates
            assert a.total_weight == pytest.approx(b.total_weight, abs=1e-9)
            assert a.mean_staleness == b.mean_staleness
            assert a.max_staleness == b.max_staleness
            assert a.contributors == b.contributors
        for (u1, s1), (u2, s2) in zip(outs_single, outs_sharded):
            assert u1.weight == pytest.approx(u2.weight, abs=1e-12)
            assert u1.staleness == u2.staleness
            assert (s1 is None) == (s2 is None)
        np.testing.assert_allclose(
            single.state.current(), sharded.state.current(), rtol=0, atol=ATOL
        )

    @pytest.mark.parametrize("weighting", ["linear", "log", "none"])
    def test_example_weighting_variants(self, weighting):
        single = FedBuffAggregator(
            fresh_state(), goal=5, example_weighting=weighting
        )
        sharded = ShardedFedBuffAggregator(
            fresh_state(), goal=5, num_shards=4, example_weighting=weighting
        )
        drive_both(single, sharded, seed=11, n=17, waves=2)
        np.testing.assert_allclose(
            single.state.current(), sharded.state.current(), rtol=0, atol=ATOL
        )

    def test_single_shard_is_bit_identical_scalar_path(self):
        single = FedBuffAggregator(fresh_state(), goal=6)
        sharded = ShardedFedBuffAggregator(fresh_state(), goal=6, num_shards=1)
        outs_single, outs_sharded = drive_both(single, sharded, seed=5)
        # Exact equality, not allclose: one shard performs the single
        # core's AXPY sequence and merging one partial is the identity.
        assert np.array_equal(single.state.current(), sharded.state.current())
        for (u1, _), (u2, _) in zip(outs_single, outs_sharded):
            assert u1.weight == u2.weight
        for a, b in zip(single.step_history, sharded.step_history):
            assert a.total_weight == b.total_weight

    def test_single_shard_is_bit_identical_block_path(self):
        rng = np.random.default_rng(9)
        single = FedBuffAggregator(fresh_state(), goal=4)
        sharded = ShardedFedBuffAggregator(fresh_state(), goal=4, num_shards=1)
        results = [make_result(rng, cid) for cid in range(11)]
        for agg in (single, sharded):
            for r in results:
                agg.register_download(r.client_id)
        single.receive_update_block(results)
        sharded.receive_update_block(results)
        assert np.array_equal(single.state.current(), sharded.state.current())

    @pytest.mark.parametrize("routing", ["hash", "load"])
    def test_block_path_matches_sequential_and_single(self, routing):
        rng = np.random.default_rng(13)
        results = [make_result(rng, cid) for cid in range(23)]
        single = FedBuffAggregator(fresh_state(), goal=5)
        seq = ShardedFedBuffAggregator(
            fresh_state(), goal=5, num_shards=4, routing=routing
        )
        blk = ShardedFedBuffAggregator(
            fresh_state(), goal=5, num_shards=4, routing=routing
        )
        for agg in (single, seq, blk):
            for r in results:
                agg.register_download(r.client_id)
        seq_out = [seq.receive_update(r) for r in results]
        blk_out = blk.receive_update_block(results)
        single_out = [single.receive_update(r) for r in results]

        assert seq.version == blk.version == single.version
        # Mid-block server steps fire at the same arrivals in all three.
        for (u1, s1), (u2, s2), (u3, s3) in zip(seq_out, blk_out, single_out):
            assert u1.weight == pytest.approx(u2.weight, abs=1e-12)
            assert (s1 is None) == (s2 is None) == (s3 is None)
            assert u1.staleness == u2.staleness == u3.staleness
        np.testing.assert_allclose(
            seq.state.current(), blk.state.current(), rtol=0, atol=ATOL
        )
        np.testing.assert_allclose(
            single.state.current(), blk.state.current(), rtol=0, atol=ATOL
        )
        assert seq.shard_loads() == blk.shard_loads()

    def test_block_rejects_unknown_client_keeps_admitted_prefix(self):
        rng = np.random.default_rng(3)
        agg = ShardedFedBuffAggregator(fresh_state(), goal=10, num_shards=3)
        known = make_result(rng, 1)
        agg.register_download(1)
        with pytest.raises(KeyError):
            agg.receive_update_block([known, make_result(rng, 99)])
        assert agg.buffered_count == 1
        assert sum(agg.shard_buffered()) == 1

    def test_version_mismatch_keeps_shard_slots_consistent(self):
        rng = np.random.default_rng(4)
        agg = ShardedFedBuffAggregator(fresh_state(), goal=10, num_shards=3)
        agg.register_download(7)
        bad = make_result(rng, 7, version=5)  # recorded initial is 0
        with pytest.raises(ValueError):
            agg.receive_update(bad)
        assert agg.shard_of(7) is None
        assert sum(agg.shard_in_flight()) == 0

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            ShardedFedBuffAggregator(fresh_state(), goal=4, num_shards=0)
        with pytest.raises(ValueError):
            ShardedFedBuffAggregator(fresh_state(), goal=4, routing="nope")

    def test_reregistration_releases_previous_shard_slot(self):
        agg = ShardedFedBuffAggregator(
            fresh_state(), goal=4, num_shards=2, routing="load"
        )
        agg.register_download(0)
        first = agg.shard_of(0)
        agg.register_download(0)  # same client re-downloads
        assert sum(agg.shard_in_flight()) == 1
        assert agg.shard_of(0) in (0, 1)
        assert first is not None

    def test_drop_buffer_and_inflight_clears_shards(self):
        rng = np.random.default_rng(6)
        agg = ShardedFedBuffAggregator(fresh_state(), goal=10, num_shards=3)
        for cid in range(6):
            agg.register_download(cid)
        for cid in range(4):
            agg.receive_update(make_result(rng, cid))
        lost, dropped = agg.drop_buffer_and_inflight()
        assert lost == 4 and sorted(dropped) == [4, 5]
        assert agg.shard_buffered() == [0, 0, 0]
        assert agg.shard_in_flight() == [0, 0, 0]
        assert all(agg.shard_alive(s) for s in range(3))


class TestShardFailover:
    @pytest.mark.parametrize("routing", ["hash", "load"])
    def test_mid_run_failure_matches_single_on_survivors(self, routing):
        """After a shard dies mid-buffer, the plane matches a single
        aggregator that was fed only the surviving arrivals."""
        rng = np.random.default_rng(21)
        sharded = ShardedFedBuffAggregator(
            fresh_state(), goal=6, num_shards=3, routing=routing
        )
        results = [make_result(rng, cid) for cid in range(30)]
        for r in results:
            sharded.register_download(r.client_id)

        # Two full steps plus a partial buffer, then shard 1 dies.
        for r in results[:15]:
            sharded.receive_update(r)
        lost, dropped_clients = sharded.drop_shard(1)
        assert lost > 0 or dropped_clients  # the scenario is non-trivial
        # Remaining in-flight clients (not routed to shard 1) upload;
        # dropped clients' late uploads are rejected like any failed one.
        accepted_tail = []
        for r in results[15:]:
            if r.client_id in dropped_clients:
                with pytest.raises(KeyError):
                    sharded.receive_update(r)
            else:
                sharded.receive_update(r)
                accepted_tail.append(r.client_id)

        survivors = set(
            cid for step in sharded.step_history for cid in step.contributors
        ) | set(sharded._contributors)
        single = FedBuffAggregator(fresh_state(), goal=6)
        for r in results:
            single.register_download(r.client_id)
        for r in results:
            if r.client_id in survivors:
                single.receive_update(r)

        assert single.version == sharded.version
        assert len(single.step_history) == len(sharded.step_history)
        for a, b in zip(single.step_history, sharded.step_history):
            assert a.contributors == b.contributors
            assert a.total_weight == pytest.approx(b.total_weight, abs=1e-9)
        np.testing.assert_allclose(
            single.state.current(), sharded.state.current(), rtol=0, atol=ATOL
        )
        assert single._weight_sum == pytest.approx(sharded._weight_sum, abs=1e-12)

    def test_dead_shard_slice_reroutes_and_revive_restores(self):
        sharded = ShardedFedBuffAggregator(
            fresh_state(), goal=100, num_shards=4, routing="hash"
        )
        # Find a client hashed to shard 2.
        probe = next(
            cid for cid in range(1000)
            if HashShardRouting().route(cid, sharded._shards) == 2
        )
        sharded.drop_shard(2)
        assert not sharded.shard_alive(2)
        assert sharded.live_shards() == [0, 1, 3]
        sharded.register_download(probe)
        assert sharded.shard_of(probe) == 3  # probed past the dead shard
        sharded.client_failed(probe)

        sharded.revive_shard(2)
        assert sharded.shard_alive(2)
        sharded.register_download(probe)
        assert sharded.shard_of(probe) == 2  # slice snaps back
        assert sharded.shard_failovers == 1

    def test_failure_spanning_epochs(self):
        """Contributions folded *before* the failure's buffer epoch are
        already in step history and survive; only the dead shard's
        current partial is excised."""
        rng = np.random.default_rng(31)
        sharded = ShardedFedBuffAggregator(
            fresh_state(), goal=4, num_shards=2, routing="hash"
        )
        results = [make_result(rng, cid) for cid in range(10)]
        for r in results:
            sharded.register_download(r.client_id)
        for r in results[:6]:  # one full step + 2 buffered
            sharded.receive_update(r)
        assert sharded.version == 1
        steps_before = len(sharded.step_history)
        buffered_before = sharded.buffered_count
        lost, _ = sharded.drop_shard(0)
        assert len(sharded.step_history) == steps_before  # history intact
        assert sharded.buffered_count == buffered_before - lost
        assert sharded.version == 1


class TestShardsExperimentMicro:
    """Micro-scale runs of the ``shards`` ExperimentSpec (harness/perf.py)."""

    @pytest.mark.parametrize("routing", ["hash", "load"])
    def test_micro_sweep_is_equivalent_everywhere(self, routing):
        from repro.harness.perf import shards_speedup

        res = shards_speedup(
            shard_counts=(1, 2, 4), populations=(16, 64), arrivals=24,
            vector_length=512, goal=8, routing=routing, repeats=1, seed=3,
        )
        assert len(res.points) == 6
        for p in res.points:
            assert p.equivalent
            assert p.max_divergence <= 1e-6
            assert p.arrivals == 24
            assert p.single_s > 0 and p.sharded_s > 0
            assert p.load_skew >= 1.0
            # Measured process arm rides along at every point: real
            # worker processes, bit-identical state, clean pool.
            assert p.process_identical
            assert p.process_fallbacks == 0
            assert p.process_s > 0
            assert p.speedup_gap == pytest.approx(
                p.speedup - p.measured_speedup
            )
        assert {p.num_shards for p in res.points} == {1, 2, 4}
        assert {p.population for p in res.points} == {16, 64}
        assert res.cpu_count >= 1

    def test_printer_renders(self, capsys):
        from repro.harness.perf import print_shards, shards_speedup

        res = shards_speedup(
            shard_counts=(2,), populations=(8,), arrivals=8,
            vector_length=64, goal=4, repeats=1,
        )
        print_shards(res)
        out = capsys.readouterr().out
        assert "Sharded aggregation plane" in out
        assert "modeled x" in out and "measured x" in out
        assert "gap" in out and "load skew" in out

    def test_registered_and_json_round_trips(self):
        from repro.harness import registry
        from repro.harness.perf import ShardsResult, shards_speedup

        spec = registry.get("shards")
        assert spec.result_type is ShardsResult
        assert not spec.uses_scale
        res = shards_speedup(
            shard_counts=(2,), populations=(8,), arrivals=8,
            vector_length=64, goal=4, repeats=1,
        )
        restored = spec.deserialize(spec.serialize(res))
        assert restored == res  # frozen dataclasses: exact field equality


class TestEndToEndShardedSimulation:
    """Full-simulation differential: sharded plane on one node vs scalar.

    With every shard colocated on a single AggregatorNode the event
    schedule (queue model, timings, selection) is identical to the
    unsharded run, so traces must line up event for event and losses to
    aggregation-reassociation tolerance.
    """

    @staticmethod
    def _run(num_shards, max_steps=20):
        from repro.core.types import TaskConfig, TrainingMode
        from repro.sim.population import DevicePopulation, PopulationConfig
        from repro.system.adapters import SurrogateAdapter
        from repro.system.orchestrator import FederatedSimulation, SystemConfig

        pop = DevicePopulation(PopulationConfig(n_devices=400), seed=0)
        cfg = TaskConfig(
            name="t", mode=TrainingMode.ASYNC, concurrency=24,
            aggregation_goal=6, model_size_bytes=200_000,
        )
        fs = FederatedSimulation(
            [(cfg, SurrogateAdapter(seed=0))], pop, seed=0,
            system=SystemConfig(n_aggregators=1, num_shards=num_shards),
        )
        res = fs.run(t_end=3e5, max_server_steps=max_steps)
        return res, fs

    def test_traces_identical_on_one_node(self):
        res1, fs1 = self._run(1)
        res4, fs4 = self._run(4)

        t1, l1 = res1.trace.loss_curve("t")
        t4, l4 = res4.trace.loss_curve("t")
        np.testing.assert_array_equal(t1, t4)
        np.testing.assert_allclose(l1, l4, rtol=0, atol=1e-6)

        parts1 = [(p.device_id, p.start_time, p.end_time, p.outcome, p.staleness)
                  for p in res1.trace.participations]
        parts4 = [(p.device_id, p.start_time, p.end_time, p.outcome, p.staleness)
                  for p in res4.trace.participations]
        assert parts1 == parts4

        rt4 = fs4.task_runtimes["t"]
        loads = rt4.core.shard_loads()
        assert sum(loads) == res4.stats().aggregated
        assert sum(1 for load in loads if load > 0) > 1  # really sharded


class TestFoldKernelRegistry:
    def test_numpy_kernel_is_registered(self):
        assert "numpy" in fold_kernel_names()
        assert get_fold_kernel("numpy") is numpy_fold_kernel

    def test_unknown_kernel_raises_listing_registered(self):
        with pytest.raises(ValueError, match="unknown fold kernel.*numpy"):
            get_fold_kernel("nope")

    def test_duplicate_registration_rejected_unless_replace(self):
        def k(partial, inputs, slots, weights, grouped):  # pragma: no cover
            pass

        register_fold_kernel("_test_dup", k)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_fold_kernel("_test_dup", k)
            register_fold_kernel("_test_dup", k, replace=True)
        finally:
            from repro.core.parallel import _FOLD_KERNELS

            _FOLD_KERNELS.pop("_test_dup", None)

    def test_numpy_kernel_matches_inline_fold_bitwise(self):
        """The kernel IS the in-process fold, op for op."""
        rng = np.random.default_rng(0)
        inputs = rng.standard_normal((6, P)).astype(np.float32)
        # Scalar path vs the single core's AXPY.
        partial = np.zeros(P, dtype=np.float64)
        numpy_fold_kernel(partial, inputs, (2,), (0.7,), False)
        assert np.array_equal(partial, 0.7 * inputs[2].astype(np.float64))
        # Grouped path vs the block path's stacked GEMV.
        partial = np.zeros(P, dtype=np.float64)
        slots, weights = (4, 1, 3), (0.2, 1.5, 0.9)
        numpy_fold_kernel(partial, inputs, slots, weights, True)
        expect = np.asarray(weights, dtype=np.float64) @ np.stack(
            [inputs[s] for s in slots]
        ).astype(np.float64)
        assert np.array_equal(partial, expect)


class TestShardWorkerPool:
    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            ShardWorkerPool(num_shards=0, vector_length=P, slots=4)
        with pytest.raises(ValueError):
            ShardWorkerPool(num_shards=2, vector_length=0, slots=4)
        with pytest.raises(ValueError):
            ShardWorkerPool(num_shards=2, vector_length=P, slots=0)
        with pytest.raises(ValueError, match="unknown fold kernel"):
            ShardWorkerPool(
                num_shards=2, vector_length=P, slots=4, fold_kernel="nope"
            )

    def test_close_is_idempotent_and_context_manager_closes(self):
        with ShardWorkerPool(num_shards=1, vector_length=P, slots=2) as pool:
            assert not pool.closed
            assert "ok" in repr(pool)
        assert pool.closed
        pool.close()  # second close is a no-op
        assert "closed" in repr(pool)

    def test_worker_main_in_process_folds_and_resets(self):
        """Drive the worker loop body in-process over real shared memory."""
        from multiprocessing import shared_memory

        slots, S = 4, 2
        input_shm = shared_memory.SharedMemory(create=True, size=slots * P * 4)
        partials_shm = shared_memory.SharedMemory(create=True, size=S * P * 8)
        try:
            inputs = np.ndarray((slots, P), dtype=np.float32, buffer=input_shm.buf)
            partials = np.ndarray((S, P), dtype=np.float64, buffer=partials_shm.buf)
            partials[:] = 0.0
            rng = np.random.default_rng(1)
            inputs[:] = rng.standard_normal((slots, P)).astype(np.float32)
            tasks, acks = queue_mod.Queue(), queue_mod.Queue()
            tasks.put(("fold", (0,), (0.5,), False, 10))
            tasks.put(("fold", (1, 3), (0.2, 0.9), True, 11))
            tasks.put(("reset", 12))
            tasks.put(("fold", (2,), (1.0,), False, 13))
            tasks.put(None)
            _worker_main(
                1, input_shm.name, partials_shm.name, S, P, slots,
                "numpy", None, tasks, acks,
            )
            # Re-attach views: _worker_main closed its own handles (and
            # with them the buffer our old views aliased).
            inputs = np.ndarray((slots, P), dtype=np.float32, buffer=input_shm.buf)
            partials = np.ndarray((S, P), dtype=np.float64, buffer=partials_shm.buf)
            assert [acks.get_nowait() for _ in range(4)] == [
                (1, 10), (1, 11), (1, 12), (1, 13)
            ]
            # Reset wiped the first two folds; only the last survives.
            assert np.array_equal(partials[1], inputs[2].astype(np.float64))
            assert np.array_equal(partials[0], np.zeros(P))
        finally:
            input_shm.close()
            input_shm.unlink()
            partials_shm.close()
            partials_shm.unlink()

    def test_partials_match_inline_replay(self):
        """Worker-computed partials == the dispatch log replayed inline."""
        rng = np.random.default_rng(2)
        with ShardWorkerPool(num_shards=2, vector_length=P, slots=8) as pool:
            pool.fold_scalar(0, rng.standard_normal(P).astype(np.float32), 0.3)
            pool.fold_group(
                1,
                [rng.standard_normal(P).astype(np.float32) for _ in range(3)],
                [0.1, 0.2, 0.7],
            )
            pool.fold_scalar(1, rng.standard_normal(P).astype(np.float32), 1.1)
            pool.barrier()
            replayed = pool.replay_partials()
            assert np.array_equal(pool.partial(0), replayed[0])
            assert np.array_equal(pool.partial(1), replayed[1])

    def test_slot_exhaustion_raises_and_marks_unhealthy(self):
        rng = np.random.default_rng(3)
        with ShardWorkerPool(num_shards=1, vector_length=P, slots=2) as pool:
            delta = rng.standard_normal(P).astype(np.float32)
            pool.fold_scalar(0, delta, 1.0)
            pool.fold_scalar(0, delta, 1.0)
            with pytest.raises(WorkerPoolError, match="slab exhausted"):
                pool.fold_scalar(0, delta, 1.0)
            assert not pool.healthy

    def test_reset_epoch_frees_slots_and_zeroes_partials(self):
        rng = np.random.default_rng(4)
        with ShardWorkerPool(num_shards=1, vector_length=P, slots=2) as pool:
            for _ in range(2):
                pool.fold_scalar(0, rng.standard_normal(P).astype(np.float32), 1.0)
            pool.reset_epoch()
            pool.barrier()
            assert np.array_equal(pool.partial(0), np.zeros(P))
            # All slots are free again: a fresh epoch fits.
            for _ in range(2):
                pool.fold_scalar(0, rng.standard_normal(P).astype(np.float32), 1.0)
            pool.barrier()


class TestProcessExecutorEquivalence:
    """The tentpole contract: process executor ≡ inline plane, bit for bit."""

    @pytest.mark.parametrize("start_method", START_METHODS)
    @pytest.mark.parametrize("num_shards", [1, 3])
    def test_scalar_path_bit_identical(self, start_method, num_shards):
        inline = ShardedFedBuffAggregator(
            fresh_state(), goal=6, num_shards=num_shards
        )
        proc = ProcessShardedFedBuffAggregator(
            fresh_state(), goal=6, num_shards=num_shards,
            start_method=start_method,
        )
        try:
            outs_inline, outs_proc = drive_both(inline, proc, seed=7)
            assert proc.pool_active and proc.executor_fallbacks == 0
            assert np.array_equal(
                inline.state.current(), proc.state.current()
            )
            for (u1, s1), (u2, s2) in zip(outs_inline, outs_proc):
                assert u1.weight == u2.weight
                assert (s1 is None) == (s2 is None)
            assert len(inline.step_history) == len(proc.step_history)
            for a, b in zip(inline.step_history, proc.step_history):
                assert a.version == b.version
                assert a.total_weight == b.total_weight
            assert inline.shard_loads() == proc.shard_loads()
        finally:
            proc.close()

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_block_path_bit_identical(self, start_method):
        rng = np.random.default_rng(17)
        results = [make_result(rng, cid) for cid in range(23)]
        inline = ShardedFedBuffAggregator(fresh_state(), goal=5, num_shards=4)
        proc = ProcessShardedFedBuffAggregator(
            fresh_state(), goal=5, num_shards=4, start_method=start_method,
        )
        try:
            for agg in (inline, proc):
                for r in results:
                    agg.register_download(r.client_id)
            inline.receive_update_block(results)
            proc.receive_update_block(results)
            assert proc.pool_active and proc.executor_fallbacks == 0
            assert np.array_equal(
                inline.state.current(), proc.state.current()
            )
            assert inline.shard_loads() == proc.shard_loads()
        finally:
            proc.close()

    def test_drop_shard_failover_bit_identical(self):
        """Mid-buffer shard failover discards the dead lane's worker
        tasks and still matches the inline plane exactly."""
        rng = np.random.default_rng(23)
        inline = ShardedFedBuffAggregator(fresh_state(), goal=6, num_shards=3)
        proc = ProcessShardedFedBuffAggregator(
            fresh_state(), goal=6, num_shards=3
        )
        try:
            for cid in range(10):
                inline.register_download(cid)
                proc.register_download(cid)
            for cid in range(4):
                r = make_result(rng, cid)
                inline.receive_update(r)
                proc.receive_update(r)
            li = inline.drop_shard(1)
            lp = proc.drop_shard(1)
            assert li == lp
            for cid in range(4, 10):
                if inline.shard_of(cid) is None:
                    continue
                r = make_result(rng, cid)
                inline.receive_update(r)
                proc.receive_update(r)
            assert proc.pool_active and proc.executor_fallbacks == 0
            assert np.array_equal(
                inline.state.current(), proc.state.current()
            )
        finally:
            proc.close()

    def test_shared_pool_is_validated_and_reusable(self):
        pool = ShardWorkerPool(num_shards=2, vector_length=P, slots=12)
        try:
            with pytest.raises(ValueError, match="shards"):
                ProcessShardedFedBuffAggregator(
                    fresh_state(), goal=4, num_shards=3, pool=pool
                )
            rng = np.random.default_rng(29)
            states = []
            for _ in range(2):  # two drives over one pool: same bits
                agg = ProcessShardedFedBuffAggregator(
                    fresh_state(), goal=4, num_shards=2, pool=pool
                )
                for cid in range(6):
                    agg.register_download(cid)
                local_rng = np.random.default_rng(31)
                for cid in range(6):
                    agg.receive_update(make_result(local_rng, cid))
                agg.drain()
                states.append(agg.state.current())
                agg.drop_buffer_and_inflight()
                agg.close()  # shared pool: stays up
            assert not pool.closed
            assert np.array_equal(states[0], states[1])
        finally:
            pool.close()
        with pytest.raises(ValueError, match="closed or unhealthy"):
            ProcessShardedFedBuffAggregator(
                fresh_state(), goal=4, num_shards=2, pool=pool
            )

    def test_mismatched_vector_length_rejected(self):
        pool = ShardWorkerPool(num_shards=2, vector_length=P + 1, slots=8)
        try:
            with pytest.raises(ValueError, match="vector length"):
                ProcessShardedFedBuffAggregator(
                    fresh_state(), goal=4, num_shards=2, pool=pool
                )
        finally:
            pool.close()


class TestProcessExecutorFallback:
    """Dead workers and exhausted slabs degrade to inline, bit-identically."""

    @staticmethod
    def _drive(agg, rng, n=30, goal_registered=True):
        for cid in range(n):
            agg.register_download(cid)
        for cid in range(n):
            agg.receive_update(make_result(rng, cid))

    def test_dead_worker_falls_back_bit_identically(self):
        events = []
        inline = ShardedFedBuffAggregator(fresh_state(), goal=6, num_shards=3)
        proc = ProcessShardedFedBuffAggregator(
            fresh_state(), goal=6, num_shards=3,
            on_event=lambda kind, fields: events.append((kind, fields)),
        )
        try:
            rng = np.random.default_rng(41)
            for cid in range(12):
                inline.register_download(cid)
                proc.register_download(cid)
            for cid in range(4):
                r = make_result(rng, cid)
                inline.receive_update(r)
                proc.receive_update(r)
            # Kill one worker mid-epoch; the merge barrier notices and
            # the plane replays the epoch's dispatch log inline.
            victim = proc._pool._procs[1]
            victim.terminate()
            victim.join(timeout=5.0)
            for cid in range(4, 12):
                r = make_result(rng, cid)
                inline.receive_update(r)
                proc.receive_update(r)
            assert not proc.pool_active
            assert proc.executor_fallbacks == 1
            kinds = [k for k, _ in events]
            assert "executor_fallback" in kinds
            fields = dict(events[kinds.index("executor_fallback")][1])
            assert fields["reason"] == "worker_dead"
            assert fields["executor"] == "inline"
            assert np.array_equal(
                inline.state.current(), proc.state.current()
            )
        finally:
            proc.close()

    def test_slab_exhaustion_falls_back_bit_identically(self):
        events = []
        # 4 slots but goal=6: the slab fills before a merge frees it.
        pool = ShardWorkerPool(num_shards=2, vector_length=P, slots=4)
        inline = ShardedFedBuffAggregator(fresh_state(), goal=6, num_shards=2)
        proc = ProcessShardedFedBuffAggregator(
            fresh_state(), goal=6, num_shards=2, pool=pool,
            on_event=lambda kind, fields: events.append((kind, fields)),
        )
        try:
            rng = np.random.default_rng(43)
            for cid in range(8):
                inline.register_download(cid)
                proc.register_download(cid)
            for cid in range(8):
                r = make_result(rng, cid)
                inline.receive_update(r)
                proc.receive_update(r)
            assert not proc.pool_active
            assert proc.executor_fallbacks == 1
            assert any(
                k == "executor_fallback" and f["reason"] == "pool_error"
                for k, f in events
            )
            assert np.array_equal(
                inline.state.current(), proc.state.current()
            )
        finally:
            proc.close()
            pool.close()

    def test_non_float32_delta_falls_back(self):
        events = []
        inline = ShardedFedBuffAggregator(fresh_state(), goal=3, num_shards=2)
        proc = ProcessShardedFedBuffAggregator(
            fresh_state(), goal=3, num_shards=2,
            on_event=lambda kind, fields: events.append((kind, fields)),
        )
        try:
            rng = np.random.default_rng(47)
            for cid in range(4):
                inline.register_download(cid)
                proc.register_download(cid)
            for cid in range(4):
                r = make_result(rng, cid)
                r64 = TrainingResult(
                    r.client_id, r.delta.astype(np.float64), r.num_examples,
                    r.train_loss, r.initial_version,
                )
                inline.receive_update(r64)
                proc.receive_update(r64)
            assert not proc.pool_active
            assert any(
                k == "executor_fallback" and f["reason"] == "unsupported_dtype"
                for k, f in events
            )
            assert np.array_equal(
                inline.state.current(), proc.state.current()
            )
        finally:
            proc.close()


class TestEndToEndProcessExecutor:
    """Full-simulation differential: shard_executor='process' vs 'inline'.

    The executor is a pure data-plane substitution, so the entire event
    schedule AND every numeric output must be identical — and fallback
    events, if any, would land in the structured event log.
    """

    @staticmethod
    def _run(executor, max_steps=12):
        from repro.core.types import TaskConfig, TrainingMode
        from repro.sim.population import DevicePopulation, PopulationConfig
        from repro.system.adapters import SurrogateAdapter
        from repro.system.orchestrator import FederatedSimulation, SystemConfig

        pop = DevicePopulation(PopulationConfig(n_devices=300), seed=0)
        cfg = TaskConfig(
            name="t", mode=TrainingMode.ASYNC, concurrency=16,
            aggregation_goal=5, model_size_bytes=200_000,
        )
        fs = FederatedSimulation(
            [(cfg, SurrogateAdapter(seed=0))], pop, seed=0,
            system=SystemConfig(
                n_aggregators=1, num_shards=3, shard_executor=executor
            ),
        )
        res = fs.run(t_end=2e5, max_server_steps=max_steps)
        return res, fs

    def test_traces_identical_to_inline_executor(self):
        res_i, fs_i = self._run("inline")
        res_p, fs_p = self._run("process")
        try:
            rt = fs_p.task_runtimes["t"]
            assert isinstance(rt.core, ProcessShardedFedBuffAggregator)
            assert rt.core.executor_fallbacks == 0

            t_i, l_i = res_i.trace.loss_curve("t")
            t_p, l_p = res_p.trace.loss_curve("t")
            np.testing.assert_array_equal(t_i, t_p)
            np.testing.assert_array_equal(l_i, l_p)  # bit-identical

            parts_i = [(p.device_id, p.start_time, p.end_time, p.outcome)
                       for p in res_i.trace.participations]
            parts_p = [(p.device_id, p.start_time, p.end_time, p.outcome)
                       for p in res_p.trace.participations]
            assert parts_i == parts_p
        finally:
            fs_p.task_runtimes["t"].close()
            fs_i.task_runtimes["t"].close()

    def test_spec_facade_builds_process_executor(self):
        from repro.api import (
            ExecutionSpec,
            PopulationSpec,
            ScenarioSpec,
            TaskSpec,
        )

        spec = ScenarioSpec(
            population=PopulationSpec(n_devices=1000, seed=0),
            tasks=(TaskSpec(name="t", mode="async", concurrency=16,
                            aggregation_goal=4, model_size_bytes=1_000_000),),
            execution=ExecutionSpec(seed=0, t_end_s=1800.0),
        ).with_overrides({
            "plane.name": "sharded",
            "plane.num_shards": 2,
            "plane.executor": "process",
        })
        assert spec.system_config().shard_executor == "process"
