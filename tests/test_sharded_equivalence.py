"""Differential equivalence suite: sharded aggregation plane vs single core.

The contract under test (see ``repro/core/sharding.py``): for any shard
count and either routing policy, :class:`ShardedFedBuffAggregator`
matches the single :class:`FedBuffAggregator` on the same arrival
sequence to float64 rounding (shard-local folding only reassociates the
weighted sum; admission, staleness, weighting, and step triggering are
the inherited single-core code), ``num_shards=1`` is **bit-identical**
to the single core on both the scalar and the block path, and mid-run
shard failure leaves the plane matching a single aggregator fed only
the surviving arrivals.  This is what lets the system layer spread one
task's aggregation across nodes without changing an experimental number.
"""

import numpy as np
import pytest

from repro.core.fedbuff import FedBuffAggregator
from repro.core.server_opt import FedAdam
from repro.core.sharding import (
    AggregationPlaneClock,
    HashShardRouting,
    LoadAwareShardRouting,
    ShardedFedBuffAggregator,
    _Shard,
    make_routing,
)
from repro.core.state import GlobalModelState
from repro.core.types import TrainingResult

ATOL = 1e-8
P = 48


def fresh_state(seed=0):
    rng = np.random.default_rng(seed)
    return GlobalModelState(rng.standard_normal(P).astype(np.float32), FedAdam(lr=0.1))


def make_result(rng, cid, version=0, scale=1.0):
    return TrainingResult(
        client_id=cid,
        delta=(rng.standard_normal(P) * scale).astype(np.float32),
        num_examples=int(rng.integers(1, 50)),
        train_loss=float(rng.random()),
        initial_version=version,
    )


def drive_both(single, sharded, seed=0, n=23, waves=3):
    """Drive identical multi-wave arrival sequences through both planes.

    Clients register in waves (so later waves carry real staleness) and
    upload in a shuffled order; both planes see the same registrations
    and the same arrivals with the same initial versions.
    """
    rng = np.random.default_rng(seed)
    outs_single, outs_sharded = [], []
    next_cid = 0
    for _ in range(waves):
        cids = list(range(next_cid, next_cid + n))
        next_cid += n
        for agg in (single, sharded):
            for cid in cids:
                agg.register_download(cid)
        # Registration versions must have agreed or weights could not.
        assert single.version == sharded.version
        order = rng.permutation(len(cids))
        for idx in order:
            cid = cids[int(idx)]
            version = single._in_flight[cid]
            assert sharded._in_flight[cid] == version
            r = make_result(rng, cid, version=version)
            outs_single.append(single.receive_update(r))
            outs_sharded.append(sharded.receive_update(r))
    return outs_single, outs_sharded


class TestShardRouting:
    def test_hash_routing_is_deterministic_and_total(self):
        shards = [_Shard() for _ in range(5)]
        routing = HashShardRouting()
        first = [routing.route(cid, shards) for cid in range(200)]
        assert first == [routing.route(cid, shards) for cid in range(200)]
        assert set(first) == set(range(5))  # every shard receives a slice

    def test_hash_routing_probes_past_dead_shards(self):
        shards = [_Shard() for _ in range(4)]
        routing = HashShardRouting()
        victim = routing.route(17, shards)
        shards[victim].alive = False
        rerouted = routing.route(17, shards)
        assert rerouted == (victim + 1) % 4
        shards[victim].alive = True
        assert routing.route(17, shards) == victim  # snaps back on revive

    def test_hash_routing_all_dead_raises(self):
        shards = [_Shard() for _ in range(2)]
        for s in shards:
            s.alive = False
        with pytest.raises(RuntimeError):
            HashShardRouting().route(0, shards)

    def test_load_aware_picks_least_loaded_with_lowest_id_ties(self):
        shards = [_Shard() for _ in range(3)]
        routing = LoadAwareShardRouting()
        assert routing.route(99, shards) == 0  # all-zero tie -> lowest id
        shards[0].in_flight = 2
        shards[1].count = 1
        assert routing.route(99, shards) == 2
        shards[2].alive = False
        assert routing.route(99, shards) == 1

    def test_load_aware_all_dead_raises(self):
        shards = [_Shard()]
        shards[0].alive = False
        with pytest.raises(RuntimeError):
            LoadAwareShardRouting().route(0, shards)

    def test_make_routing(self):
        assert make_routing("hash").name == "hash"
        assert make_routing("load").name == "load"
        with pytest.raises(ValueError):
            make_routing("random")


class TestPlaneClock:
    def test_lane_schedule_and_barrier(self):
        clock = AggregationPlaneClock(2)
        clock.record_fold(0, 1.0)
        clock.record_fold(1, 3.0)
        clock.record_fold(0, 1.0)  # lane 0 now at 2.0, lane 1 at 3.0
        assert clock.elapsed == pytest.approx(3.0)
        clock.record_merge(0.5)  # barrier over both lanes
        assert clock.root == pytest.approx(3.5)
        clock.record_fold(0, 1.0)  # next epoch folds start after the merge
        assert clock.lanes[0] == pytest.approx(4.5)
        assert clock.elapsed == pytest.approx(4.5)
        assert clock.folds == 4 and clock.merges == 1

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            AggregationPlaneClock(0)

    def test_block_path_feeds_the_clock(self):
        rng = np.random.default_rng(17)
        clock = AggregationPlaneClock(3)
        agg = ShardedFedBuffAggregator(
            fresh_state(), goal=4, num_shards=3, clock=clock
        )
        results = [make_result(rng, cid) for cid in range(9)]
        for r in results:
            agg.register_download(r.client_id)
        agg.receive_update_block(results)
        assert clock.folds == 9  # grouped folds count every update
        assert clock.merges == 2
        assert clock.elapsed > 0.0


class TestPlaneWideOutage:
    def test_download_during_outage_registers_unrouted(self):
        agg = ShardedFedBuffAggregator(fresh_state(), goal=4, num_shards=2)
        agg.drop_shard(0)
        agg.drop_shard(1)
        # Must not raise: the client registers but gets no shard.
        agg.register_download(5)
        assert agg.shard_of(5) is None
        assert agg.in_flight_count() == 1
        # A direct update for the unrouted client is rejected before any
        # buffer accounting mutates.
        rng = np.random.default_rng(0)
        with pytest.raises(KeyError, match="no shard was live"):
            agg.receive_update(make_result(rng, 5))
        with pytest.raises(KeyError, match="no shard was live"):
            agg.receive_update_block([make_result(rng, 5)])
        assert agg.buffered_count == 0
        assert agg.updates_received == 0
        # client_failed on the unrouted client stays consistent.
        agg.client_failed(5)
        assert agg.in_flight_count() == 0


class TestShardedEquivalence:
    @pytest.mark.parametrize("num_shards", [2, 3, 8])
    @pytest.mark.parametrize("routing", ["hash", "load"])
    def test_matches_single_aggregator(self, num_shards, routing):
        single = FedBuffAggregator(fresh_state(), goal=7)
        sharded = ShardedFedBuffAggregator(
            fresh_state(), goal=7, num_shards=num_shards, routing=routing
        )
        outs_single, outs_sharded = drive_both(single, sharded, seed=num_shards)

        assert single.version == sharded.version
        assert single.updates_received == sharded.updates_received
        assert len(single.step_history) == len(sharded.step_history)
        for a, b in zip(single.step_history, sharded.step_history):
            assert a.version == b.version
            assert a.num_updates == b.num_updates
            assert a.total_weight == pytest.approx(b.total_weight, abs=1e-9)
            assert a.mean_staleness == b.mean_staleness
            assert a.max_staleness == b.max_staleness
            assert a.contributors == b.contributors
        for (u1, s1), (u2, s2) in zip(outs_single, outs_sharded):
            assert u1.weight == pytest.approx(u2.weight, abs=1e-12)
            assert u1.staleness == u2.staleness
            assert (s1 is None) == (s2 is None)
        np.testing.assert_allclose(
            single.state.current(), sharded.state.current(), rtol=0, atol=ATOL
        )

    @pytest.mark.parametrize("weighting", ["linear", "log", "none"])
    def test_example_weighting_variants(self, weighting):
        single = FedBuffAggregator(
            fresh_state(), goal=5, example_weighting=weighting
        )
        sharded = ShardedFedBuffAggregator(
            fresh_state(), goal=5, num_shards=4, example_weighting=weighting
        )
        drive_both(single, sharded, seed=11, n=17, waves=2)
        np.testing.assert_allclose(
            single.state.current(), sharded.state.current(), rtol=0, atol=ATOL
        )

    def test_single_shard_is_bit_identical_scalar_path(self):
        single = FedBuffAggregator(fresh_state(), goal=6)
        sharded = ShardedFedBuffAggregator(fresh_state(), goal=6, num_shards=1)
        outs_single, outs_sharded = drive_both(single, sharded, seed=5)
        # Exact equality, not allclose: one shard performs the single
        # core's AXPY sequence and merging one partial is the identity.
        assert np.array_equal(single.state.current(), sharded.state.current())
        for (u1, _), (u2, _) in zip(outs_single, outs_sharded):
            assert u1.weight == u2.weight
        for a, b in zip(single.step_history, sharded.step_history):
            assert a.total_weight == b.total_weight

    def test_single_shard_is_bit_identical_block_path(self):
        rng = np.random.default_rng(9)
        single = FedBuffAggregator(fresh_state(), goal=4)
        sharded = ShardedFedBuffAggregator(fresh_state(), goal=4, num_shards=1)
        results = [make_result(rng, cid) for cid in range(11)]
        for agg in (single, sharded):
            for r in results:
                agg.register_download(r.client_id)
        single.receive_update_block(results)
        sharded.receive_update_block(results)
        assert np.array_equal(single.state.current(), sharded.state.current())

    @pytest.mark.parametrize("routing", ["hash", "load"])
    def test_block_path_matches_sequential_and_single(self, routing):
        rng = np.random.default_rng(13)
        results = [make_result(rng, cid) for cid in range(23)]
        single = FedBuffAggregator(fresh_state(), goal=5)
        seq = ShardedFedBuffAggregator(
            fresh_state(), goal=5, num_shards=4, routing=routing
        )
        blk = ShardedFedBuffAggregator(
            fresh_state(), goal=5, num_shards=4, routing=routing
        )
        for agg in (single, seq, blk):
            for r in results:
                agg.register_download(r.client_id)
        seq_out = [seq.receive_update(r) for r in results]
        blk_out = blk.receive_update_block(results)
        single_out = [single.receive_update(r) for r in results]

        assert seq.version == blk.version == single.version
        # Mid-block server steps fire at the same arrivals in all three.
        for (u1, s1), (u2, s2), (u3, s3) in zip(seq_out, blk_out, single_out):
            assert u1.weight == pytest.approx(u2.weight, abs=1e-12)
            assert (s1 is None) == (s2 is None) == (s3 is None)
            assert u1.staleness == u2.staleness == u3.staleness
        np.testing.assert_allclose(
            seq.state.current(), blk.state.current(), rtol=0, atol=ATOL
        )
        np.testing.assert_allclose(
            single.state.current(), blk.state.current(), rtol=0, atol=ATOL
        )
        assert seq.shard_loads() == blk.shard_loads()

    def test_block_rejects_unknown_client_keeps_admitted_prefix(self):
        rng = np.random.default_rng(3)
        agg = ShardedFedBuffAggregator(fresh_state(), goal=10, num_shards=3)
        known = make_result(rng, 1)
        agg.register_download(1)
        with pytest.raises(KeyError):
            agg.receive_update_block([known, make_result(rng, 99)])
        assert agg.buffered_count == 1
        assert sum(agg.shard_buffered()) == 1

    def test_version_mismatch_keeps_shard_slots_consistent(self):
        rng = np.random.default_rng(4)
        agg = ShardedFedBuffAggregator(fresh_state(), goal=10, num_shards=3)
        agg.register_download(7)
        bad = make_result(rng, 7, version=5)  # recorded initial is 0
        with pytest.raises(ValueError):
            agg.receive_update(bad)
        assert agg.shard_of(7) is None
        assert sum(agg.shard_in_flight()) == 0

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            ShardedFedBuffAggregator(fresh_state(), goal=4, num_shards=0)
        with pytest.raises(ValueError):
            ShardedFedBuffAggregator(fresh_state(), goal=4, routing="nope")

    def test_reregistration_releases_previous_shard_slot(self):
        agg = ShardedFedBuffAggregator(
            fresh_state(), goal=4, num_shards=2, routing="load"
        )
        agg.register_download(0)
        first = agg.shard_of(0)
        agg.register_download(0)  # same client re-downloads
        assert sum(agg.shard_in_flight()) == 1
        assert agg.shard_of(0) in (0, 1)
        assert first is not None

    def test_drop_buffer_and_inflight_clears_shards(self):
        rng = np.random.default_rng(6)
        agg = ShardedFedBuffAggregator(fresh_state(), goal=10, num_shards=3)
        for cid in range(6):
            agg.register_download(cid)
        for cid in range(4):
            agg.receive_update(make_result(rng, cid))
        lost, dropped = agg.drop_buffer_and_inflight()
        assert lost == 4 and sorted(dropped) == [4, 5]
        assert agg.shard_buffered() == [0, 0, 0]
        assert agg.shard_in_flight() == [0, 0, 0]
        assert all(agg.shard_alive(s) for s in range(3))


class TestShardFailover:
    @pytest.mark.parametrize("routing", ["hash", "load"])
    def test_mid_run_failure_matches_single_on_survivors(self, routing):
        """After a shard dies mid-buffer, the plane matches a single
        aggregator that was fed only the surviving arrivals."""
        rng = np.random.default_rng(21)
        sharded = ShardedFedBuffAggregator(
            fresh_state(), goal=6, num_shards=3, routing=routing
        )
        results = [make_result(rng, cid) for cid in range(30)]
        for r in results:
            sharded.register_download(r.client_id)

        # Two full steps plus a partial buffer, then shard 1 dies.
        for r in results[:15]:
            sharded.receive_update(r)
        lost, dropped_clients = sharded.drop_shard(1)
        assert lost > 0 or dropped_clients  # the scenario is non-trivial
        # Remaining in-flight clients (not routed to shard 1) upload;
        # dropped clients' late uploads are rejected like any failed one.
        accepted_tail = []
        for r in results[15:]:
            if r.client_id in dropped_clients:
                with pytest.raises(KeyError):
                    sharded.receive_update(r)
            else:
                sharded.receive_update(r)
                accepted_tail.append(r.client_id)

        survivors = set(
            cid for step in sharded.step_history for cid in step.contributors
        ) | set(sharded._contributors)
        single = FedBuffAggregator(fresh_state(), goal=6)
        for r in results:
            single.register_download(r.client_id)
        for r in results:
            if r.client_id in survivors:
                single.receive_update(r)

        assert single.version == sharded.version
        assert len(single.step_history) == len(sharded.step_history)
        for a, b in zip(single.step_history, sharded.step_history):
            assert a.contributors == b.contributors
            assert a.total_weight == pytest.approx(b.total_weight, abs=1e-9)
        np.testing.assert_allclose(
            single.state.current(), sharded.state.current(), rtol=0, atol=ATOL
        )
        assert single._weight_sum == pytest.approx(sharded._weight_sum, abs=1e-12)

    def test_dead_shard_slice_reroutes_and_revive_restores(self):
        sharded = ShardedFedBuffAggregator(
            fresh_state(), goal=100, num_shards=4, routing="hash"
        )
        # Find a client hashed to shard 2.
        probe = next(
            cid for cid in range(1000)
            if HashShardRouting().route(cid, sharded._shards) == 2
        )
        sharded.drop_shard(2)
        assert not sharded.shard_alive(2)
        assert sharded.live_shards() == [0, 1, 3]
        sharded.register_download(probe)
        assert sharded.shard_of(probe) == 3  # probed past the dead shard
        sharded.client_failed(probe)

        sharded.revive_shard(2)
        assert sharded.shard_alive(2)
        sharded.register_download(probe)
        assert sharded.shard_of(probe) == 2  # slice snaps back
        assert sharded.shard_failovers == 1

    def test_failure_spanning_epochs(self):
        """Contributions folded *before* the failure's buffer epoch are
        already in step history and survive; only the dead shard's
        current partial is excised."""
        rng = np.random.default_rng(31)
        sharded = ShardedFedBuffAggregator(
            fresh_state(), goal=4, num_shards=2, routing="hash"
        )
        results = [make_result(rng, cid) for cid in range(10)]
        for r in results:
            sharded.register_download(r.client_id)
        for r in results[:6]:  # one full step + 2 buffered
            sharded.receive_update(r)
        assert sharded.version == 1
        steps_before = len(sharded.step_history)
        buffered_before = sharded.buffered_count
        lost, _ = sharded.drop_shard(0)
        assert len(sharded.step_history) == steps_before  # history intact
        assert sharded.buffered_count == buffered_before - lost
        assert sharded.version == 1


class TestShardsExperimentMicro:
    """Micro-scale runs of the ``shards`` ExperimentSpec (harness/perf.py)."""

    @pytest.mark.parametrize("routing", ["hash", "load"])
    def test_micro_sweep_is_equivalent_everywhere(self, routing):
        from repro.harness.perf import shards_speedup

        res = shards_speedup(
            shard_counts=(1, 2, 4), populations=(16, 64), arrivals=24,
            vector_length=512, goal=8, routing=routing, repeats=1, seed=3,
        )
        assert len(res.points) == 6
        for p in res.points:
            assert p.equivalent
            assert p.max_divergence <= 1e-6
            assert p.arrivals == 24
            assert p.single_s > 0 and p.sharded_s > 0
            assert p.load_skew >= 1.0
        assert {p.num_shards for p in res.points} == {1, 2, 4}
        assert {p.population for p in res.points} == {16, 64}

    def test_printer_renders(self, capsys):
        from repro.harness.perf import print_shards, shards_speedup

        res = shards_speedup(
            shard_counts=(2,), populations=(8,), arrivals=8,
            vector_length=64, goal=4, repeats=1,
        )
        print_shards(res)
        out = capsys.readouterr().out
        assert "Sharded aggregation plane" in out
        assert "speedup" in out and "load skew" in out

    def test_registered_and_json_round_trips(self):
        from repro.harness import registry
        from repro.harness.perf import ShardsResult, shards_speedup

        spec = registry.get("shards")
        assert spec.result_type is ShardsResult
        assert not spec.uses_scale
        res = shards_speedup(
            shard_counts=(2,), populations=(8,), arrivals=8,
            vector_length=64, goal=4, repeats=1,
        )
        restored = spec.deserialize(spec.serialize(res))
        assert restored == res  # frozen dataclasses: exact field equality


class TestEndToEndShardedSimulation:
    """Full-simulation differential: sharded plane on one node vs scalar.

    With every shard colocated on a single AggregatorNode the event
    schedule (queue model, timings, selection) is identical to the
    unsharded run, so traces must line up event for event and losses to
    aggregation-reassociation tolerance.
    """

    @staticmethod
    def _run(num_shards, max_steps=20):
        from repro.core.types import TaskConfig, TrainingMode
        from repro.sim.population import DevicePopulation, PopulationConfig
        from repro.system.adapters import SurrogateAdapter
        from repro.system.orchestrator import FederatedSimulation, SystemConfig

        pop = DevicePopulation(PopulationConfig(n_devices=400), seed=0)
        cfg = TaskConfig(
            name="t", mode=TrainingMode.ASYNC, concurrency=24,
            aggregation_goal=6, model_size_bytes=200_000,
        )
        fs = FederatedSimulation(
            [(cfg, SurrogateAdapter(seed=0))], pop, seed=0,
            system=SystemConfig(n_aggregators=1, num_shards=num_shards),
        )
        res = fs.run(t_end=3e5, max_server_steps=max_steps)
        return res, fs

    def test_traces_identical_on_one_node(self):
        res1, fs1 = self._run(1)
        res4, fs4 = self._run(4)

        t1, l1 = res1.trace.loss_curve("t")
        t4, l4 = res4.trace.loss_curve("t")
        np.testing.assert_array_equal(t1, t4)
        np.testing.assert_allclose(l1, l4, rtol=0, atol=1e-6)

        parts1 = [(p.device_id, p.start_time, p.end_time, p.outcome, p.staleness)
                  for p in res1.trace.participations]
        parts4 = [(p.device_id, p.start_time, p.end_time, p.outcome, p.staleness)
                  for p in res4.trace.participations]
        assert parts1 == parts4

        rt4 = fs4.task_runtimes["t"]
        loads = rt4.core.shard_loads()
        assert sum(loads) == res4.stats().aggregated
        assert sum(1 for load in loads if load > 0) > 1  # really sharded
