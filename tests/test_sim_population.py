"""Tests for the heterogeneous device population and network model."""

import numpy as np
import pytest

from repro.sim import (
    ColumnarDevicePopulation,
    DevicePopulation,
    NetworkModel,
    PopulationConfig,
)
from repro.utils import child_rng


@pytest.fixture(scope="module")
def pop():
    return DevicePopulation(PopulationConfig(n_devices=20_000), seed=7)


class TestProfiles:
    def test_deterministic(self, pop):
        a, b = pop.profile(42), pop.profile(42)
        assert a == b

    def test_cached_identity(self, pop):
        assert pop.profile(43) is pop.profile(43)

    def test_out_of_range_rejected(self, pop):
        with pytest.raises(ValueError):
            pop.profile(20_000)
        with pytest.raises(ValueError):
            pop.profile(-1)

    def test_examples_bounded(self, pop):
        profs = pop.sample_profiles(500, child_rng(0, "t"))
        for p in profs:
            assert 1 <= p.n_examples <= pop.config.max_examples

    def test_execution_time_formula(self, pop):
        p = pop.profile(1)
        t = p.execution_time(overhead_s=2.0)
        assert t == pytest.approx(2.0 + p.n_examples * p.sec_per_example)
        assert p.execution_time(2.0, epochs=2) > t

    def test_heterogeneity_spans_orders_of_magnitude(self, pop):
        # Figure 2: the execution-time distribution spans >2 orders.
        stats = pop.execution_time_stats(2000)
        assert stats["spread_orders_of_magnitude"] > 2.0

    def test_straggler_tail(self, pop):
        # Mean >> median under a heavy right tail.
        stats = pop.execution_time_stats(2000)
        assert stats["mean"] > 1.5 * stats["median"]
        assert stats["p99"] > 5 * stats["median"]

    def test_slow_devices_have_more_data(self, pop):
        # Figure 11's mechanism: positive speed/data correlation.
        profs = pop.sample_profiles(3000, child_rng(1, "t"))
        sec = np.array([p.sec_per_example for p in profs])
        n = np.array([p.n_examples for p in profs])
        corr = np.corrcoef(np.log(sec), np.log(n))[0, 1]
        assert corr > 0.3

    def test_zero_correlation_config(self):
        pop0 = DevicePopulation(
            PopulationConfig(n_devices=5000, speed_data_correlation=0.0), seed=1
        )
        profs = pop0.sample_profiles(2000, child_rng(2, "t"))
        sec = np.array([p.sec_per_example for p in profs])
        n = np.array([p.n_examples for p in profs])
        corr = np.corrcoef(np.log(sec), np.log(n))[0, 1]
        assert abs(corr) < 0.15

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            PopulationConfig(n_devices=0)
        with pytest.raises(ValueError):
            PopulationConfig(speed_data_correlation=1.5)
        with pytest.raises(ValueError):
            PopulationConfig(dropout_rate=-0.1)
        with pytest.raises(ValueError):
            PopulationConfig(eligibility_rate=0.0)
        with pytest.raises(ValueError):
            PopulationConfig(mean_examples=0)


class TestStochasticBehaviour:
    def test_dropout_rate_approximate(self, pop):
        drops = sum(
            pop.dropout_point(d, 0) is not None for d in range(2000)
        )
        assert 0.06 < drops / 2000 < 0.14  # config rate is 0.1

    def test_dropout_fraction_in_range(self, pop):
        for d in range(300):
            frac = pop.dropout_point(d, 0)
            if frac is not None:
                assert 0.0 < frac < 1.0

    def test_dropout_deterministic_per_participation(self, pop):
        assert pop.dropout_point(5, 3) == pop.dropout_point(5, 3)

    def test_eligibility_rate_approximate(self, pop):
        ok = sum(pop.is_eligible(d, 0) for d in range(2000))
        assert 0.74 < ok / 2000 < 0.86  # config rate is 0.8

    def test_eligibility_varies_per_checkin(self, pop):
        rolls = {pop.is_eligible(11, c) for c in range(50)}
        assert rolls == {True, False}


class TestDiurnalAvailability:
    @pytest.fixture(scope="class")
    def diurnal_pop(self):
        return DevicePopulation(
            PopulationConfig(n_devices=5000, eligibility_rate=0.5,
                             diurnal_amplitude=0.6),
            seed=3,
        )

    def test_rate_peaks_at_night(self, diurnal_pop):
        night = diurnal_pop.eligibility_rate_at(3 * 3600.0)   # 3 am
        afternoon = diurnal_pop.eligibility_rate_at(15 * 3600.0)  # 3 pm
        assert night > afternoon
        assert night == pytest.approx(0.5 * 1.6, rel=1e-6)
        assert afternoon == pytest.approx(0.5 * 0.4, rel=1e-6)

    def test_rate_is_24h_periodic(self, diurnal_pop):
        day = 24 * 3600.0
        assert diurnal_pop.eligibility_rate_at(7 * 3600.0) == pytest.approx(
            diurnal_pop.eligibility_rate_at(7 * 3600.0 + 5 * day)
        )

    def test_rate_clipped_to_unit_interval(self):
        pop = DevicePopulation(
            PopulationConfig(n_devices=10, eligibility_rate=0.9,
                             diurnal_amplitude=0.9),
            seed=0,
        )
        for h in range(24):
            assert 0.0 <= pop.eligibility_rate_at(h * 3600.0) <= 1.0

    def test_acceptance_tracks_rate(self, diurnal_pop):
        def rate(t):
            ok = sum(diurnal_pop.is_eligible(d, 0, time_s=t) for d in range(2000))
            return ok / 2000

        assert rate(3 * 3600.0) > rate(15 * 3600.0) + 0.3

    def test_zero_amplitude_time_invariant(self, pop):
        assert pop.eligibility_rate_at(0.0) == pop.eligibility_rate_at(50_000.0)

    def test_invalid_amplitude(self):
        with pytest.raises(ValueError):
            PopulationConfig(diurnal_amplitude=1.0)


class TestNetworkModel:
    def test_download_faster_than_upload(self, pop):
        net = NetworkModel()
        p = pop.profile(0)
        nbytes = 20 * 1024 * 1024
        assert net.download_time(p, nbytes) < net.upload_time(p, nbytes)

    def test_chunked_upload_pays_per_chunk_rtt(self, pop):
        net = NetworkModel(rtt_s=0.1, chunk_bytes=1024)
        p = pop.profile(0)
        t_small = net.upload_time(p, 1024)
        t_big = net.upload_time(p, 10 * 1024)
        assert t_big > t_small + 8 * 0.1  # ~9 extra chunks

    def test_zero_bytes_costs_rtt(self, pop):
        net = NetworkModel(rtt_s=0.2)
        assert net.download_time(pop.profile(0), 0) == pytest.approx(0.2)

    def test_negative_bytes_rejected(self, pop):
        net = NetworkModel()
        with pytest.raises(ValueError):
            net.download_time(pop.profile(0), -1)
        with pytest.raises(ValueError):
            net.upload_time(pop.profile(0), -1)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            NetworkModel(rtt_s=-1)
        with pytest.raises(ValueError):
            NetworkModel(chunk_bytes=0)


@pytest.fixture(scope="module")
def cpop():
    return ColumnarDevicePopulation(PopulationConfig(n_devices=5_000), seed=7)


class TestColumnarColumns:
    def test_deterministic_across_instances(self, cpop):
        other = ColumnarDevicePopulation(PopulationConfig(n_devices=5_000), seed=7)
        np.testing.assert_array_equal(cpop.sec_per_example, other.sec_per_example)
        np.testing.assert_array_equal(cpop.n_examples, other.n_examples)
        np.testing.assert_array_equal(cpop.payload_bytes, other.payload_bytes)
        np.testing.assert_array_equal(cpop.speed_tier, other.speed_tier)

    def test_seed_changes_columns(self, cpop):
        other = ColumnarDevicePopulation(PopulationConfig(n_devices=5_000), seed=8)
        assert not np.array_equal(cpop.sec_per_example, other.sec_per_example)

    def test_multi_chunk_fleet_is_deterministic(self):
        # A fleet spanning several vectorized chunks realizes each chunk
        # from its own child stream: rebuilds reproduce exactly, and the
        # second chunk is not a replay of the first.
        n = ColumnarDevicePopulation.CHUNK + 1_000
        a = ColumnarDevicePopulation(PopulationConfig(n_devices=n), seed=3)
        b = ColumnarDevicePopulation(PopulationConfig(n_devices=n), seed=3)
        np.testing.assert_array_equal(a.sec_per_example, b.sec_per_example)
        assert not np.array_equal(
            a.sec_per_example[a.CHUNK:], a.sec_per_example[:1_000]
        )

    def test_footprint_is_about_50_bytes_per_device(self, cpop):
        n = cpop.config.n_devices
        # f8 speed + i32 examples + f8 down + f8 up + i64 payload +
        # u8 tier + f8 next_wake + bool available = 46 bytes/device.
        assert cpop.columns_nbytes() == n * (8 + 4 + 8 + 8 + 8 + 1 + 8 + 1)

    def test_speed_tiers_are_quartiles(self, cpop):
        tiers, counts = np.unique(cpop.speed_tier, return_counts=True)
        np.testing.assert_array_equal(tiers, [0, 1, 2, 3])
        n = cpop.config.n_devices
        assert counts.min() > 0.2 * n and counts.max() < 0.3 * n
        # Banding is monotone in realized speed: every tier-3 device is
        # slower than every tier-0 device.
        sec = cpop.sec_per_example
        assert sec[cpop.speed_tier == 3].min() >= sec[cpop.speed_tier == 0].max()

    def test_distribution_matches_scalar_model(self):
        # Different realization, same distributional formulas: medians
        # and correlation sign line up with the object-per-device fleet.
        cfg = PopulationConfig(n_devices=20_000)
        cp = ColumnarDevicePopulation(cfg, seed=1)
        assert np.median(cp.sec_per_example) == pytest.approx(
            cfg.median_sec_per_example, rel=0.1
        )
        r = np.corrcoef(np.log(cp.sec_per_example), np.log(cp.n_examples))[0, 1]
        assert r > 0.3  # slow devices hold more data

    def test_invalid_payload_params_rejected(self):
        with pytest.raises(ValueError):
            ColumnarDevicePopulation(payload_base_bytes=0)
        with pytest.raises(ValueError):
            ColumnarDevicePopulation(payload_sigma=-0.1)


class TestColumnarProfiles:
    def test_profile_matches_columns(self, cpop):
        p = cpop.profile(123)
        assert p.sec_per_example == cpop.sec_per_example[123]
        assert p.n_examples == cpop.n_examples[123]
        assert p.download_bandwidth == cpop.download_bandwidth[123]

    def test_profile_is_transient(self, cpop):
        assert cpop.profile(5) == cpop.profile(5)
        assert cpop.profile(5) is not cpop.profile(5)
        assert cpop.active_profiles == 0

    def test_out_of_range_rejected(self, cpop):
        with pytest.raises(ValueError):
            cpop.profile(5_000)
        with pytest.raises(ValueError):
            cpop.profile(-1)

    def test_checkout_pins_release_drops(self):
        cp = ColumnarDevicePopulation(PopulationConfig(n_devices=100), seed=0)
        pinned = cp.checkout(7)
        assert cp.checkout(7) is pinned        # idempotent while active
        assert cp.profile(7) is pinned         # profile() serves the pin
        assert cp.active_profiles == 1
        cp.release(7)
        assert cp.active_profiles == 0
        assert cp.profile(7) is not pinned     # transient again
        cp.release(7)                          # double release is a no-op

    def test_base_population_checkout_is_the_cache(self):
        pop = DevicePopulation(PopulationConfig(n_devices=100), seed=0)
        p = pop.checkout(3)
        assert p is pop.profile(3)
        pop.release(3)                         # no-op: cache keeps it
        assert pop.profile(3) is p
        assert pop.active_profiles == 1


class TestColumnarBatchedSampling:
    def test_execution_times_match_scalar_formula(self, cpop):
        ids = np.array([0, 17, 999, 4_321])
        batched = cpop.execution_times(ids, epochs=2)
        expected = [
            cpop.profile(int(i)).execution_time(cpop.config.overhead_s, epochs=2)
            for i in ids
        ]
        np.testing.assert_allclose(batched, expected)

    def test_transfer_times_match_profile_bandwidths(self, cpop):
        ids = np.array([4, 8])
        got = cpop.transfer_times(ids)
        for k, i in enumerate(ids):
            p = cpop.profile(int(i))
            payload = cpop.payload_bytes[i]
            expected = payload / p.download_bandwidth + payload / p.upload_bandwidth
            assert got[k] == pytest.approx(expected)

    def test_eligibility_mask_respects_rate(self):
        cp = ColumnarDevicePopulation(
            PopulationConfig(n_devices=100, eligibility_rate=1.0), seed=0
        )
        ids = np.arange(100)
        assert cp.eligibility_mask(ids, 0.0, child_rng(0, "t")).all()

    def test_dropout_fractions_nan_when_disabled(self):
        cp = ColumnarDevicePopulation(
            PopulationConfig(n_devices=50, dropout_rate=0.0), seed=0
        )
        fr = cp.dropout_fractions(np.arange(50), child_rng(0, "t"))
        assert np.isnan(fr).all()

    def test_dropout_fractions_in_range(self, cpop):
        fr = cpop.dropout_fractions(np.arange(2_000), child_rng(1, "t"))
        hit = fr[~np.isnan(fr)]
        assert len(hit) > 0
        assert ((hit >= 0.05) & (hit <= 0.95)).all()
