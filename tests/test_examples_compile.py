"""Every example script must at least compile and import its dependencies.

Full example runs take tens of seconds each; this keeps `pytest tests/`
fast while still catching broken imports or syntax rot in the examples.
"""

import ast
import importlib
import pathlib

import pytest

EXAMPLES = sorted((pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_parses_and_imports_resolve(path):
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))

    # Collect imports and verify each module resolves.
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                importlib.import_module(alias.name)
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module} has no attribute {alias.name}"
                )


def test_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "secure_aggregation_demo.py",
            "fairness_overselection.py"}.issubset(names)
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_main_guard_and_docstring(path):
    source = path.read_text()
    assert '__name__ == "__main__"' in source, f"{path.name} missing main guard"
    assert ast.get_docstring(ast.parse(source)), f"{path.name} missing docstring"
