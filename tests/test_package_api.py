"""The public API surface: everything advertised must import and exist."""

import importlib

import pytest

SUBPACKAGES = [
    "repro.core",
    "repro.data",
    "repro.nn",
    "repro.secagg",
    "repro.sim",
    "repro.system",
    "repro.client",
    "repro.harness",
    "repro.obs",
    "repro.utils",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_subpackage_exports_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} must declare __all__"
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} is advertised but missing"


def test_top_level_exports_resolve():
    import repro

    for symbol in repro.__all__:
        assert hasattr(repro, symbol)
    assert repro.__version__


def test_headline_workflow_symbols_are_top_level():
    import repro

    for symbol in ("FederatedSimulation", "TaskConfig", "TrainingMode",
                   "LSTMLanguageModel", "DevicePopulation"):
        assert symbol in repro.__all__


@pytest.mark.parametrize("name", SUBPACKAGES + ["repro"])
def test_every_public_item_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} missing module docstring"
    for symbol in getattr(module, "__all__", []):
        obj = getattr(module, symbol)
        if callable(obj) or isinstance(obj, type):
            assert obj.__doc__, f"{name}.{symbol} missing docstring"
