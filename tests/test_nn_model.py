"""Tests for the LSTM language model, loss, and optimizers."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    LSTMLanguageModel,
    ModelConfig,
    ParamSpec,
    cross_entropy,
    perplexity,
    softmax,
    zeros_like_flat,
)
from repro.utils import child_rng


@pytest.fixture
def model():
    return LSTMLanguageModel(ModelConfig(vocab_size=16, embed_dim=6, hidden_dim=8), seed=0)


@pytest.fixture
def batch():
    # Learnable structure: the target is the input shifted by one position,
    # i.e. "predict the token you just saw" — trivially learnable by an LSTM.
    rng = child_rng(0, "model-test-batch")
    x = rng.integers(0, 16, size=(4, 7)).astype(np.int32)
    y = np.roll(x, -1, axis=1).astype(np.int32)
    y[:, -1] = x[:, -1]
    return x, y


class TestParamSpec:
    def test_flatten_unflatten_roundtrip(self):
        rng = child_rng(0, "spec")
        params = {"b": rng.standard_normal((2, 3)).astype(np.float32),
                  "a": rng.standard_normal(4).astype(np.float32)}
        spec = ParamSpec.from_params(params)
        flat = spec.flatten(params)
        out = spec.unflatten(flat)
        for k in params:
            np.testing.assert_array_equal(out[k], params[k])

    def test_canonical_order_is_sorted(self):
        params = {"z": np.zeros(1, np.float32), "a": np.zeros(2, np.float32)}
        spec = ParamSpec.from_params(params)
        assert spec.names == ("a", "z")
        assert spec.size == 3

    def test_slot_addresses_parameter(self):
        params = {"a": np.arange(3, dtype=np.float32), "b": np.arange(2, dtype=np.float32)}
        spec = ParamSpec.from_params(params)
        flat = spec.flatten(params)
        np.testing.assert_array_equal(flat[spec.slot("b")], [0, 1])

    def test_shape_mismatch_rejected(self):
        params = {"a": np.zeros(3, np.float32)}
        spec = ParamSpec.from_params(params)
        with pytest.raises(ValueError):
            spec.flatten({"a": np.zeros(4, np.float32)})

    def test_wrong_size_vector_rejected(self):
        spec = ParamSpec.from_params({"a": np.zeros(3, np.float32)})
        with pytest.raises(ValueError):
            spec.unflatten(np.zeros(5, np.float32))

    def test_zeros_like_flat(self):
        spec = ParamSpec.from_params({"a": np.ones((2, 2), np.float32)})
        z = zeros_like_flat(spec)
        assert z.shape == (4,) and z.dtype == np.float32 and not z.any()


class TestLoss:
    def test_softmax_rows_sum_to_one(self):
        rng = child_rng(0, "sm")
        p = softmax(rng.standard_normal((5, 9)))
        np.testing.assert_allclose(p.sum(axis=1), 1.0, rtol=1e-6)

    def test_uniform_logits_loss_is_log_v(self):
        logits = np.zeros((3, 4, 10), dtype=np.float32)
        targets = np.zeros((3, 4), dtype=np.int64)
        loss, _ = cross_entropy(logits, targets)
        assert loss == pytest.approx(np.log(10), rel=1e-5)

    def test_perfect_prediction_near_zero_loss(self):
        logits = np.full((1, 1, 5), -100.0, dtype=np.float32)
        logits[0, 0, 2] = 100.0
        loss, _ = cross_entropy(logits, np.array([[2]]))
        assert loss < 1e-6

    def test_gradient_sums_to_zero_per_row(self):
        rng = child_rng(1, "ce")
        logits = rng.standard_normal((6, 11)).astype(np.float32)
        targets = rng.integers(0, 11, 6)
        _, d = cross_entropy(logits, targets)
        np.testing.assert_allclose(d.sum(axis=1), 0.0, atol=1e-6)

    def test_gradient_matches_finite_difference(self):
        rng = child_rng(2, "ce-fd")
        logits = rng.standard_normal((3, 5)).astype(np.float64)
        targets = rng.integers(0, 5, 3)
        _, d = cross_entropy(logits.copy(), targets)
        eps = 1e-5
        for i in range(3):
            for j in range(5):
                up = logits.copy(); up[i, j] += eps
                down = logits.copy(); down[i, j] -= eps
                lu, _ = cross_entropy(up, targets, with_grad=False)
                ld, _ = cross_entropy(down, targets, with_grad=False)
                assert d[i, j] == pytest.approx((lu - ld) / (2 * eps), abs=1e-5)

    def test_target_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            cross_entropy(np.zeros((2, 3)), np.array([0, 3]))

    def test_perplexity_of_log_v(self):
        assert perplexity(np.log(60.0)) == pytest.approx(60.0, rel=1e-9)

    def test_perplexity_clipped(self):
        assert np.isfinite(perplexity(1e9))


class TestModel:
    def test_forward_shape(self, model, batch):
        x, _ = batch
        logits, _ = model.forward(x)
        assert logits.shape == (4, 7, 16)

    def test_deterministic_init(self, batch):
        cfg = ModelConfig(vocab_size=16, embed_dim=6, hidden_dim=8)
        m1, m2 = LSTMLanguageModel(cfg, seed=5), LSTMLanguageModel(cfg, seed=5)
        np.testing.assert_array_equal(m1.get_flat(), m2.get_flat())

    def test_different_seeds_differ(self):
        cfg = ModelConfig(vocab_size=16, embed_dim=6, hidden_dim=8)
        assert not np.array_equal(
            LSTMLanguageModel(cfg, seed=1).get_flat(),
            LSTMLanguageModel(cfg, seed=2).get_flat(),
        )

    def test_flat_roundtrip(self, model):
        vec = model.get_flat()
        model.set_flat(vec * 2)
        np.testing.assert_allclose(model.get_flat(), vec * 2, rtol=1e-6)

    def test_clone_independent(self, model):
        clone = model.clone()
        np.testing.assert_array_equal(clone.get_flat(), model.get_flat())
        clone.set_flat(clone.get_flat() + 1)
        assert not np.array_equal(clone.get_flat(), model.get_flat())

    def test_initial_loss_near_uniform(self, model, batch):
        x, y = batch
        loss = model.evaluate(x, y)
        assert abs(loss - np.log(16)) < 0.5

    def test_grad_shape_matches_params(self, model, batch):
        x, y = batch
        _, g = model.loss_and_grad(x, y)
        assert g.shape == (model.num_params,)
        assert np.isfinite(g).all()

    def test_training_reduces_loss(self, model, batch):
        x, y = batch
        opt = SGD(lr=1.0)
        first = model.evaluate(x, y)
        vec = model.get_flat()
        for _ in range(60):
            loss, g = model.loss_and_grad(x, y)
            vec = opt.step(vec, g)
            model.set_flat(vec)
        assert model.evaluate(x, y) < first - 0.5

    def test_model_grad_matches_finite_difference_sample(self, batch):
        # Spot-check a handful of coordinates end-to-end through the model.
        cfg = ModelConfig(vocab_size=8, embed_dim=4, hidden_dim=5)
        model = LSTMLanguageModel(cfg, seed=3)
        x = np.array([[1, 2, 3, 4]], dtype=np.int32)
        y = np.array([[2, 3, 4, 5]], dtype=np.int32)
        _, g = model.loss_and_grad(x, y)
        vec = model.get_flat().astype(np.float64)
        rng = child_rng(0, "fd-idx")
        eps = 1e-3
        for idx in rng.choice(vec.size, size=12, replace=False):
            up, down = vec.copy(), vec.copy()
            up[idx] += eps
            down[idx] -= eps
            model.set_flat(up.astype(np.float32))
            lu = model.evaluate(x, y)
            model.set_flat(down.astype(np.float32))
            ld = model.evaluate(x, y)
            num = (lu - ld) / (2 * eps)
            assert g[idx] == pytest.approx(num, rel=0.05, abs=2e-3)

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig(vocab_size=0)
        with pytest.raises(ValueError):
            ModelConfig(num_layers=0)


class TestStackedLSTM:
    def test_two_layer_forward_shape(self):
        cfg = ModelConfig(vocab_size=12, embed_dim=5, hidden_dim=7, num_layers=2)
        model = LSTMLanguageModel(cfg, seed=0)
        x = np.arange(12).reshape(2, 6).astype(np.int32) % 12
        logits, _ = model.forward(x)
        assert logits.shape == (2, 6, 12)

    def test_deeper_model_has_more_params(self):
        shallow = LSTMLanguageModel(ModelConfig(16, 6, 8, num_layers=1), seed=0)
        deep = LSTMLanguageModel(ModelConfig(16, 6, 8, num_layers=2), seed=0)
        assert deep.num_params > shallow.num_params

    def test_two_layer_grad_matches_finite_difference(self):
        cfg = ModelConfig(vocab_size=8, embed_dim=4, hidden_dim=5, num_layers=2)
        model = LSTMLanguageModel(cfg, seed=3)
        x = np.array([[1, 2, 3, 4]], dtype=np.int32)
        y = np.array([[2, 3, 4, 5]], dtype=np.int32)
        _, g = model.loss_and_grad(x, y)
        vec = model.get_flat().astype(np.float64)
        rng = child_rng(0, "fd-idx-2l")
        eps = 1e-3
        for idx in rng.choice(vec.size, size=10, replace=False):
            up, down = vec.copy(), vec.copy()
            up[idx] += eps
            down[idx] -= eps
            model.set_flat(up.astype(np.float32))
            lu = model.evaluate(x, y)
            model.set_flat(down.astype(np.float32))
            ld = model.evaluate(x, y)
            assert g[idx] == pytest.approx((lu - ld) / (2 * eps), rel=0.05, abs=2e-3)

    def test_two_layer_model_trains(self):
        cfg = ModelConfig(vocab_size=12, embed_dim=5, hidden_dim=7, num_layers=2)
        model = LSTMLanguageModel(cfg, seed=0)
        rng = child_rng(1, "2l-batch")
        x = rng.integers(0, 12, (4, 6)).astype(np.int32)
        y = np.roll(x, -1, axis=1).astype(np.int32)
        opt = SGD(lr=1.0)
        before = model.evaluate(x, y)
        vec = model.get_flat()
        for _ in range(40):
            _, g = model.loss_and_grad(x, y)
            vec = opt.step(vec, g)
            model.set_flat(vec)
        assert model.evaluate(x, y) < before - 0.3


class TestOptimizers:
    def test_sgd_step_direction(self):
        opt = SGD(lr=0.1)
        p = np.zeros(3, dtype=np.float32)
        g = np.array([1.0, -1.0, 0.0], dtype=np.float32)
        np.testing.assert_allclose(opt.step(p, g), [-0.1, 0.1, 0.0], rtol=1e-6)

    def test_sgd_momentum_accumulates(self):
        opt = SGD(lr=1.0, momentum=0.9)
        p = np.zeros(1, dtype=np.float32)
        g = np.ones(1, dtype=np.float32)
        p = opt.step(p, g)   # v=1, p=-1
        p = opt.step(p, g)   # v=1.9, p=-2.9
        assert p[0] == pytest.approx(-2.9, rel=1e-6)

    def test_sgd_clipping(self):
        opt = SGD(lr=1.0, clip_norm=1.0)
        p = np.zeros(2, dtype=np.float32)
        g = np.array([3.0, 4.0], dtype=np.float32)  # norm 5 -> scaled to 1
        out = opt.step(p, g)
        assert np.linalg.norm(out) == pytest.approx(1.0, rel=1e-5)

    def test_sgd_reset_clears_velocity(self):
        opt = SGD(lr=1.0, momentum=0.9)
        opt.step(np.zeros(1, np.float32), np.ones(1, np.float32))
        opt.reset()
        p2 = opt.step(np.zeros(1, np.float32), np.ones(1, np.float32))
        assert p2[0] == pytest.approx(-1.0)

    def test_sgd_invalid_args(self):
        with pytest.raises(ValueError):
            SGD(lr=0)
        with pytest.raises(ValueError):
            SGD(lr=0.1, momentum=1.0)

    def test_adam_first_step_size_is_lr(self):
        opt = Adam(lr=0.01)
        p = np.zeros(3, dtype=np.float32)
        out = opt.step(p, np.array([1.0, -2.0, 0.5], dtype=np.float32))
        # Bias-corrected Adam moves ~lr in the sign direction on step 1.
        np.testing.assert_allclose(out, [-0.01, 0.01, -0.01], rtol=1e-4)

    def test_adam_converges_on_quadratic(self):
        opt = Adam(lr=0.1)
        p = np.array([5.0, -3.0], dtype=np.float32)
        for _ in range(300):
            p = opt.step(p, 2 * p)
        assert np.abs(p).max() < 0.05

    def test_adam_step_count(self):
        opt = Adam()
        assert opt.step_count == 0
        opt.step(np.zeros(1, np.float32), np.ones(1, np.float32))
        assert opt.step_count == 1
        opt.reset()
        assert opt.step_count == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SGD(lr=0.1).step(np.zeros(2, np.float32), np.zeros(3, np.float32))
        with pytest.raises(ValueError):
            Adam().step(np.zeros(2, np.float32), np.zeros(3, np.float32))
