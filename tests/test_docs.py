"""The docs tree stays truthful.

Two mechanisms, both also run by the CI docs job:

* ``tools/check_docs.py`` — ``docs/EXPERIMENTS.md`` is in lockstep with
  the experiment registry (every registered experiment has a section
  with the registry description verbatim and a CLI invocation, and no
  section documents an unregistered experiment), and
  ``docs/OBSERVABILITY.md``'s catalog tables list exactly the
  metrics/spans/phases the observability plane emits;
* doctests — every ``pycon`` block in the README and ``docs/*.md`` is
  an executable example, run here so the prose can't rot.
"""

import doctest
import importlib.util
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
)


@pytest.fixture(scope="module")
def check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def drifted_copy(tmp_path, mutate):
    """A tmp repo root whose EXPERIMENTS.md is ``mutate``-d."""
    text = (REPO_ROOT / "docs" / "EXPERIMENTS.md").read_text(encoding="utf-8")
    (tmp_path / "docs").mkdir()
    (tmp_path / "src").mkdir()  # load_registry path insert; repro is cached
    (tmp_path / "docs" / "EXPERIMENTS.md").write_text(
        mutate(text), encoding="utf-8"
    )
    return tmp_path


class TestRegistrySync:
    def test_repo_docs_are_in_sync(self, check_docs):
        problems = check_docs.find_drift(REPO_ROOT)
        assert problems == [], "\n".join(problems)

    def test_main_exit_status(self, check_docs):
        assert check_docs.main(REPO_ROOT) == 0

    def test_missing_section_detected(self, check_docs, tmp_path):
        root = drifted_copy(
            tmp_path, lambda t: t.replace("### `million`", "### drop")
        )
        problems = check_docs.find_drift(root)
        assert any("'million'" in p and "no" in p for p in problems)

    def test_unregistered_section_detected(self, check_docs, tmp_path):
        root = drifted_copy(tmp_path, lambda t: t + "\n### `ghost`\n\nstuff\n")
        problems = check_docs.find_drift(root)
        assert any("'ghost'" in p for p in problems)

    def test_description_drift_detected(self, check_docs, tmp_path):
        root = drifted_copy(
            tmp_path,
            lambda t: t.replace("*columnar fleet 10k→1M devices", "*reworded"),
        )
        problems = check_docs.find_drift(root)
        assert any("'million'" in p and "verbatim" in p for p in problems)

    def test_missing_cli_invocation_detected(self, check_docs, tmp_path):
        root = drifted_copy(
            tmp_path,
            lambda t: t.replace("python -m repro.harness fig2\n", ""),
        )
        problems = check_docs.find_drift(root)
        assert any("'fig2'" in p and "fenced" in p for p in problems)

    def test_missing_doc_file_detected(self, check_docs, tmp_path):
        (tmp_path / "src").mkdir()
        assert check_docs.find_drift(tmp_path) == [
            "docs/EXPERIMENTS.md is missing"
        ]
        assert check_docs.main(tmp_path) == 1


def drifted_obs_copy(tmp_path, mutate):
    """A tmp repo root whose OBSERVABILITY.md is ``mutate``-d."""
    text = (REPO_ROOT / "docs" / "OBSERVABILITY.md").read_text(encoding="utf-8")
    (tmp_path / "docs").mkdir()
    (tmp_path / "src").mkdir()
    (tmp_path / "docs" / "OBSERVABILITY.md").write_text(
        mutate(text), encoding="utf-8"
    )
    return tmp_path


class TestCatalogSync:
    def test_repo_catalogs_are_in_sync(self, check_docs):
        problems = check_docs.find_catalog_drift(REPO_ROOT)
        assert problems == [], "\n".join(problems)

    def test_undocumented_metric_detected(self, check_docs, tmp_path):
        root = drifted_obs_copy(
            tmp_path,
            lambda t: "\n".join(
                row for row in t.splitlines()
                if not row.startswith("| `checkins_total`")
            ),
        )
        problems = check_docs.find_catalog_drift(root)
        assert any("missing `checkins_total`" in p for p in problems)

    def test_phantom_span_detected(self, check_docs, tmp_path):
        root = drifted_obs_copy(
            tmp_path,
            lambda t: t.replace(
                "| `round_trip` |", "| `ghost_span` | x |\n| `round_trip` |"
            ),
        )
        problems = check_docs.find_catalog_drift(root)
        assert any("`ghost_span`" in p and "not emit" in p for p in problems)

    def test_missing_catalog_section_detected(self, check_docs, tmp_path):
        root = drifted_obs_copy(
            tmp_path,
            lambda t: t.replace("## Profiling phase catalog", "## Renamed"),
        )
        problems = check_docs.find_catalog_drift(root)
        assert any("no ## Profiling phase catalog" in p for p in problems)

    def test_missing_obs_doc_detected(self, check_docs, tmp_path):
        (tmp_path / "src").mkdir()
        assert check_docs.find_catalog_drift(tmp_path) == [
            "docs/OBSERVABILITY.md is missing"
        ]


class TestDoctests:
    def test_docs_exist(self):
        names = {p.name for p in DOC_FILES}
        assert {"README.md", "ARCHITECTURE.md", "EXPERIMENTS.md"} <= names

    @pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
    def test_doc_examples_run(self, path):
        results = doctest.testfile(str(path), module_relative=False)
        assert results.attempted > 0, f"{path.name} has no executable examples"
        assert results.failed == 0
