"""Tests for the differential-privacy extension (paper's future work)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    DPConfig,
    DPFedBuffAggregator,
    FedSGD,
    GlobalModelState,
    TrainingResult,
    ZCDPAccountant,
    clip_by_l2_norm,
)


def make_state(dim=4):
    return GlobalModelState(np.zeros(dim, dtype=np.float32), FedSGD(lr=1.0))


def result(cid, delta, version=0):
    return TrainingResult(
        client_id=cid,
        delta=np.asarray(delta, dtype=np.float32),
        num_examples=1,
        train_loss=1.0,
        initial_version=version,
    )


class TestClipping:
    def test_small_vector_unchanged(self):
        v = np.array([0.3, 0.4], dtype=np.float32)  # norm 0.5
        np.testing.assert_array_equal(clip_by_l2_norm(v, 1.0), v)

    def test_large_vector_scaled_to_bound(self):
        v = np.array([3.0, 4.0], dtype=np.float32)  # norm 5
        out = clip_by_l2_norm(v, 1.0)
        assert np.linalg.norm(out) == pytest.approx(1.0, rel=1e-6)
        # Direction preserved.
        np.testing.assert_allclose(out / np.linalg.norm(out), v / 5.0, rtol=1e-6)

    def test_zero_vector_stable(self):
        v = np.zeros(3, dtype=np.float32)
        np.testing.assert_array_equal(clip_by_l2_norm(v, 1.0), v)

    def test_returns_copy(self):
        v = np.array([0.1], dtype=np.float32)
        out = clip_by_l2_norm(v, 1.0)
        out[0] = 99
        assert v[0] == pytest.approx(0.1)

    @settings(max_examples=30)
    @given(hnp.arrays(np.float32, st.integers(1, 16),
                      elements=st.floats(-100, 100, width=32)))
    def test_clip_property(self, v):
        out = clip_by_l2_norm(v, 1.0)
        assert np.linalg.norm(out) <= 1.0 + 1e-5


class TestAccountant:
    def test_no_releases_no_cost(self):
        acc = ZCDPAccountant(DPConfig(noise_multiplier=1.0))
        assert acc.rho == 0.0
        assert acc.epsilon() == 0.0

    def test_rho_composition_linear(self):
        acc = ZCDPAccountant(DPConfig(noise_multiplier=1.0))
        for _ in range(10):
            acc.record_release()
        assert acc.rho == pytest.approx(5.0)  # 10 / (2 * 1)

    def test_more_noise_less_epsilon(self):
        low = ZCDPAccountant(DPConfig(noise_multiplier=0.5))
        high = ZCDPAccountant(DPConfig(noise_multiplier=2.0))
        for acc in (low, high):
            for _ in range(5):
                acc.record_release()
        assert high.epsilon() < low.epsilon()

    def test_zero_noise_infinite_epsilon(self):
        acc = ZCDPAccountant(DPConfig(noise_multiplier=0.0))
        acc.record_release()
        assert math.isinf(acc.epsilon())

    def test_epsilon_monotone_in_releases(self):
        acc = ZCDPAccountant(DPConfig(noise_multiplier=1.0))
        eps = []
        for _ in range(5):
            acc.record_release()
            eps.append(acc.epsilon())
        assert all(a < b for a, b in zip(eps, eps[1:]))

    def test_delta_validation(self):
        acc = ZCDPAccountant(DPConfig())
        with pytest.raises(ValueError):
            acc.epsilon(delta=0.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DPConfig(clip_norm=0)
        with pytest.raises(ValueError):
            DPConfig(noise_multiplier=-1)
        with pytest.raises(ValueError):
            DPConfig(delta=1.0)


class TestDPFedBuff:
    def test_updates_clipped_before_buffering(self):
        dp = DPConfig(clip_norm=1.0, noise_multiplier=0.0)
        agg = DPFedBuffAggregator(make_state(2), goal=1, dp=dp, seed=0)
        agg.register_download(0)
        agg.receive_update(result(0, [30.0, 40.0]))  # norm 50 -> clipped to 1
        out = agg.state.current()
        assert np.linalg.norm(out) == pytest.approx(1.0, rel=1e-5)

    def test_noise_added_per_step(self):
        dp = DPConfig(clip_norm=1.0, noise_multiplier=1.0)
        agg = DPFedBuffAggregator(make_state(4), goal=2, dp=dp, seed=0)
        for cid in (0, 1):
            agg.register_download(cid)
            agg.receive_update(result(cid, [0.0, 0.0, 0.0, 0.0]))
        # Zero inputs, yet the model moved: that is the DP noise.
        assert np.linalg.norm(agg.state.current()) > 0

    def test_noise_scale_matches_mechanism(self):
        # With zero inputs, each step's average equals noise ~ N(0,(zC/K)^2).
        dp = DPConfig(clip_norm=2.0, noise_multiplier=1.5)
        goal = 4
        samples = []
        agg = DPFedBuffAggregator(make_state(64), goal=goal, dp=dp, seed=1)
        state_prev = agg.state.current()
        for step in range(30):
            for i in range(goal):
                cid = step * goal + i
                agg.register_download(cid)
                agg.receive_update(result(cid, np.zeros(64), version=step))
            now = agg.state.current()
            samples.append(now - state_prev)
            state_prev = now
        observed = np.std(np.concatenate(samples))
        expected = dp.noise_multiplier * dp.clip_norm / goal
        assert observed == pytest.approx(expected, rel=0.1)

    def test_accountant_tracks_steps(self):
        dp = DPConfig(noise_multiplier=1.0)
        agg = DPFedBuffAggregator(make_state(1), goal=1, dp=dp, seed=0)
        for cid in range(3):
            agg.register_download(cid)
            agg.receive_update(result(cid, [0.1], version=cid))
        assert agg.accountant.releases == 3
        assert agg.epsilon_spent > 0

    def test_unsafe_weighting_rejected(self):
        with pytest.raises(ValueError, match="sensitivity"):
            DPFedBuffAggregator(
                make_state(1), goal=1, dp=DPConfig(), example_weighting="linear"
            )

    def test_noise_deterministic_per_seed(self):
        def run(seed):
            agg = DPFedBuffAggregator(
                make_state(4), goal=1, dp=DPConfig(noise_multiplier=1.0), seed=seed
            )
            agg.register_download(0)
            agg.receive_update(result(0, [0.0] * 4))
            return agg.state.current()

        np.testing.assert_array_equal(run(7), run(7))
        assert not np.array_equal(run(7), run(8))

    def test_staleness_weighting_still_applies(self):
        dp = DPConfig(clip_norm=10.0, noise_multiplier=0.0)
        agg = DPFedBuffAggregator(make_state(1), goal=2, dp=dp, seed=0)
        agg.register_download(0)  # will be stale by 1 after a first step
        agg.register_download(10)
        agg.register_download(11)
        agg.receive_update(result(10, [0.0]))
        agg.receive_update(result(11, [0.0]))  # version -> 1
        agg.register_download(1)
        agg.receive_update(result(1, [0.0], version=1))
        upd, info = agg.receive_update(result(0, [2.0], version=0))
        assert upd.weight == pytest.approx(1 / np.sqrt(2))
        # buffer/goal normalization: (2 * w) / 2
        np.testing.assert_allclose(
            agg.state.current()[0], 2 * upd.weight / 2, rtol=1e-5
        )
