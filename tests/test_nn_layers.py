"""Gradient-correctness tests for the NumPy layers (finite differences)."""

import numpy as np
import pytest

from repro.nn import layers
from repro.utils import child_rng


def numerical_grad(f, x, eps=1e-4):
    """Central-difference gradient of scalar f at array x (float64)."""
    g = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = g.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = f()
        flat[i] = orig - eps
        down = f()
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return g


@pytest.fixture
def rng():
    return child_rng(0, "layer-tests")


class TestSigmoid:
    def test_range(self, rng):
        # Mathematically (0, 1); float32 rounds the extremes to the bounds.
        x = rng.standard_normal(100).astype(np.float32) * 10
        y = layers.sigmoid(x)
        assert np.all(y >= 0) and np.all(y <= 1)
        mid = np.abs(x) < 5
        assert np.all(y[mid] > 0) and np.all(y[mid] < 1)

    def test_extremes_stable(self):
        y = layers.sigmoid(np.array([-1e4, 1e4], dtype=np.float32))
        assert np.isfinite(y).all()
        assert y[0] < 1e-6 and y[1] > 1 - 1e-6

    def test_symmetry(self, rng):
        x = rng.standard_normal(50).astype(np.float32)
        np.testing.assert_allclose(
            layers.sigmoid(x) + layers.sigmoid(-x), 1.0, atol=1e-6
        )


class TestEmbedding:
    def test_forward_shape_and_lookup(self, rng):
        params = layers.init_embedding(rng, vocab=11, dim=5)
        tokens = np.array([[1, 2], [3, 10]])
        out, _ = layers.embedding_forward(params, tokens)
        assert out.shape == (2, 2, 5)
        np.testing.assert_array_equal(out[1, 1], params["weight"][10])

    def test_backward_scatters(self, rng):
        params = layers.init_embedding(rng, vocab=6, dim=3)
        tokens = np.array([[2, 2, 4]])
        _, cache = layers.embedding_forward(params, tokens)
        d_out = np.ones((1, 3, 3), dtype=np.float32)
        grads = layers.embedding_backward(cache, d_out)
        # Token 2 appears twice: its gradient row is the sum of both slots.
        np.testing.assert_array_equal(grads["weight"][2], 2 * np.ones(3))
        np.testing.assert_array_equal(grads["weight"][4], np.ones(3))
        np.testing.assert_array_equal(grads["weight"][0], np.zeros(3))


class TestLinearGradients:
    def test_grad_matches_finite_difference(self, rng):
        params = layers.init_linear(rng, 4, 3)
        params = {k: v.astype(np.float64) for k, v in params.items()}
        x = rng.standard_normal((2, 5, 4))

        def loss():
            y, _ = layers.linear_forward(params, x)
            return float((y**2).sum())

        y, cache = layers.linear_forward(params, x)
        d_x, grads = layers.linear_backward(cache, 2 * y)

        for name in ("weight", "bias"):
            num = numerical_grad(loss, params[name])
            np.testing.assert_allclose(grads[name], num, rtol=1e-4, atol=1e-5)
        num_x = numerical_grad(loss, x)
        np.testing.assert_allclose(d_x, num_x, rtol=1e-4, atol=1e-5)


class TestLSTMGradients:
    def test_forward_shapes(self, rng):
        params = layers.init_lstm(rng, d_in=3, d_hidden=4)
        x = rng.standard_normal((2, 6, 3)).astype(np.float32)
        hs, _ = layers.lstm_forward(params, x)
        assert hs.shape == (2, 6, 4)

    def test_forget_bias_initialized_to_one(self, rng):
        params = layers.init_lstm(rng, d_in=3, d_hidden=4)
        np.testing.assert_array_equal(params["bias"][4:8], 1.0)
        np.testing.assert_array_equal(params["bias"][:4], 0.0)

    def test_hidden_state_bounded(self, rng):
        params = layers.init_lstm(rng, d_in=3, d_hidden=4)
        x = (rng.standard_normal((4, 20, 3)) * 50).astype(np.float32)
        hs, _ = layers.lstm_forward(params, x)
        assert np.all(np.abs(hs) <= 1.0 + 1e-6)  # |o * tanh(c)| <= 1

    def test_grad_matches_finite_difference(self, rng):
        params = layers.init_lstm(rng, d_in=3, d_hidden=4)
        params = {k: v.astype(np.float64) for k, v in params.items()}
        x = rng.standard_normal((2, 5, 3))

        def loss():
            hs, _ = layers.lstm_forward(params, x)
            return float((hs**2).sum())

        hs, cache = layers.lstm_forward(params, x)
        d_x, grads = layers.lstm_backward(cache, 2 * hs)

        for name in ("w_x", "w_h", "bias"):
            num = numerical_grad(loss, params[name])
            np.testing.assert_allclose(
                grads[name], num, rtol=2e-3, atol=1e-4,
                err_msg=f"LSTM grad mismatch for {name}",
            )
        num_x = numerical_grad(loss, x)
        np.testing.assert_allclose(d_x, num_x, rtol=2e-3, atol=1e-4)

    def test_initial_state_respected(self, rng):
        params = layers.init_lstm(rng, d_in=2, d_hidden=3)
        x = rng.standard_normal((1, 4, 2)).astype(np.float32)
        h0 = np.ones((1, 3), dtype=np.float32) * 0.5
        c0 = np.ones((1, 3), dtype=np.float32)
        hs_with, _ = layers.lstm_forward(params, x, h0, c0)
        hs_zero, _ = layers.lstm_forward(params, x)
        assert not np.allclose(hs_with[:, 0], hs_zero[:, 0])
