"""End-to-end tests of the Asynchronous SecAgg protocol (Figure 16)."""

import numpy as np
import pytest

from repro.secagg import (
    BoundaryCostModel,
    ProtocolError,
    SecAggClient,
    build_deployment,
    run_secure_aggregation,
)
from repro.utils import child_rng


def make_updates(n, length, seed=0, scale=1.0):
    rng = child_rng(seed, "updates")
    return [rng.uniform(-scale, scale, length) for _ in range(n)]


class TestEndToEnd:
    def test_sum_correct(self):
        updates = make_updates(5, 64)
        agg, _ = run_secure_aggregation(updates)
        np.testing.assert_allclose(agg, np.sum(updates, axis=0), atol=1e-3)

    def test_single_client(self):
        updates = make_updates(1, 16)
        agg, _ = run_secure_aggregation(updates)
        np.testing.assert_allclose(agg, updates[0], atol=1e-3)

    def test_many_clients(self):
        updates = make_updates(50, 32)
        agg, _ = run_secure_aggregation(updates)
        np.testing.assert_allclose(agg, np.sum(updates, axis=0), atol=5e-3)

    def test_weighted_aggregation(self):
        updates = make_updates(4, 16)
        weights = [1, 2, 3, 10]
        agg, _ = run_secure_aggregation(updates, weights=weights)
        expected = np.sum([w * u for w, u in zip(weights, updates)], axis=0)
        np.testing.assert_allclose(agg, expected, atol=0.02)

    def test_zero_weight_client_excluded(self):
        updates = [np.ones(8), np.full(8, 100.0)]
        agg, _ = run_secure_aggregation(
            updates, weights=[1, 0], clip_value=128.0, scale=2**8
        )
        np.testing.assert_allclose(agg, np.ones(8), atol=0.05)

    def test_server_never_sees_plaintext(self):
        updates = make_updates(3, 32)
        _, dep = run_secure_aggregation(updates)
        for sub, upd in zip(dep.server.accepted_submissions, updates):
            decoded = dep.codec.decode(sub.masked_update)
            assert not np.allclose(decoded, upd, atol=0.1)

    def test_boundary_traffic_is_constant_per_client(self):
        # O(K + m): TEE input bytes must not scale with the model size.
        small, _ = run_secure_aggregation(make_updates(4, 8))
        big, dep_big = run_secure_aggregation(make_updates(4, 4096))
        # (re-run small to fetch its deployment)
        _, dep_small = run_secure_aggregation(make_updates(4, 8))
        assert dep_big.tsa.boundary_bytes_in == dep_small.tsa.boundary_bytes_in

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            run_secure_aggregation([])
        with pytest.raises(ValueError):
            run_secure_aggregation([np.zeros(4), np.zeros(5)])
        with pytest.raises(ValueError):
            run_secure_aggregation([np.zeros(4)], weights=[1, 2])


class TestThresholdSemantics:
    def test_unmask_blocked_below_threshold(self):
        dep = build_deployment(vector_length=8, threshold=3)
        client = SecAggClient(0, dep.codec, dep.authority, dep.tsa.binary_hash,
                              dep.tsa.params_hash, child_rng(0, "c0"))
        leg = dep.server.assign_leg()
        dep.server.submit(client.participate(np.zeros(8), leg))
        with pytest.raises(ProtocolError, match="threshold"):
            dep.server.finalize()

    def test_unmask_released_at_threshold(self):
        dep = build_deployment(vector_length=8, threshold=2)
        for i in range(2):
            c = SecAggClient(i, dep.codec, dep.authority, dep.tsa.binary_hash,
                             dep.tsa.params_hash, child_rng(0, "c", i))
            dep.server.submit(c.participate(np.full(8, 0.5), dep.server.assign_leg()))
        agg = dep.server.finalize()
        np.testing.assert_allclose(agg, np.ones(8), atol=1e-3)

    def test_release_is_one_shot(self):
        dep = build_deployment(vector_length=4, threshold=1)
        c = SecAggClient(0, dep.codec, dep.authority, dep.tsa.binary_hash,
                         dep.tsa.params_hash, child_rng(0, "c"))
        dep.server.submit(c.participate(np.zeros(4), dep.server.assign_leg()))
        dep.server.finalize()
        with pytest.raises(ProtocolError):
            dep.server.finalize()
        with pytest.raises(ProtocolError):
            dep.tsa.release_unmask()

    def test_tsa_ignores_clients_after_release(self):
        dep = build_deployment(vector_length=4, threshold=1)
        c0 = SecAggClient(0, dep.codec, dep.authority, dep.tsa.binary_hash,
                          dep.tsa.params_hash, child_rng(0, "c0"))
        sub0 = c0.participate(np.zeros(4), dep.server.assign_leg())
        dep.server.submit(sub0)
        dep.server.finalize()
        c1 = SecAggClient(1, dep.codec, dep.authority, dep.tsa.binary_hash,
                          dep.tsa.params_hash, child_rng(0, "c1"))
        sub1 = c1.participate(np.zeros(4), dep.server.assign_leg())
        assert dep.server.submit(sub1) is False


class TestLegSemantics:
    def test_leg_single_use(self):
        dep = build_deployment(vector_length=4, threshold=1)
        c = SecAggClient(0, dep.codec, dep.authority, dep.tsa.binary_hash,
                         dep.tsa.params_hash, child_rng(0, "c"))
        leg = dep.server.assign_leg()
        sub = c.participate(np.zeros(4), leg)
        assert dep.server.submit(sub) is True
        # Same leg again — "the trusted party will not process any further
        # completing messages to the i'th initial message."
        sub2 = c.participate(np.zeros(4), leg)
        assert dep.server.submit(sub2) is False

    def test_legs_minted_on_demand(self):
        dep = build_deployment(vector_length=4, threshold=1)
        seen = {dep.server.assign_leg().index for _ in range(40)}
        assert len(seen) == 40

    def test_unknown_leg_rejected(self):
        dep = build_deployment(vector_length=4, threshold=1)
        c = SecAggClient(0, dep.codec, dep.authority, dep.tsa.binary_hash,
                         dep.tsa.params_hash, child_rng(0, "c"))
        leg = dep.server.assign_leg()
        sub = c.participate(np.zeros(4), leg)
        from dataclasses import replace

        assert dep.server.submit(replace(sub, leg_index=9999)) is False


class TestBoundaryCostModel:
    MODEL_20MB = 20 * 1024 * 1024

    def test_calibration_naive_k100(self):
        m = BoundaryCostModel()
        assert m.naive_transfer_ms(100, self.MODEL_20MB) == pytest.approx(650, rel=0.01)

    def test_naive_linear_in_k(self):
        m = BoundaryCostModel()
        t1000 = m.naive_transfer_ms(1000, self.MODEL_20MB)
        assert t1000 == pytest.approx(6500, rel=0.01)  # the paper's ~6500 ms

    def test_async_nearly_flat_in_k(self):
        m = BoundaryCostModel()
        t10 = m.async_transfer_ms(10, self.MODEL_20MB)
        t1000 = m.async_transfer_ms(1000, self.MODEL_20MB)
        assert t1000 < 2 * t10  # flat-ish, vs 100x for naive

    def test_async_beats_naive_everywhere(self):
        m = BoundaryCostModel()
        for k in (10, 50, 100, 500, 1000):
            assert m.async_transfer_ms(k, self.MODEL_20MB) < m.naive_transfer_ms(
                k, self.MODEL_20MB
            )

    def test_asymptotic_ratio_grows_with_k(self):
        m = BoundaryCostModel()
        r100 = m.naive_transfer_ms(100, self.MODEL_20MB) / m.async_transfer_ms(
            100, self.MODEL_20MB
        )
        r1000 = m.naive_transfer_ms(1000, self.MODEL_20MB) / m.async_transfer_ms(
            1000, self.MODEL_20MB
        )
        assert r1000 > r100 > 1
