"""Tests for deterministic hierarchical RNG streams."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import child_rng, make_rng, spawn_rngs, stable_hash64


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash64("population", 3) == stable_hash64("population", 3)

    def test_distinct_labels_differ(self):
        assert stable_hash64("a") != stable_hash64("b")

    def test_label_order_matters(self):
        assert stable_hash64("a", "b") != stable_hash64("b", "a")

    def test_no_concatenation_collision(self):
        # ("ab",) must not collide with ("a", "b").
        assert stable_hash64("ab") != stable_hash64("a", "b")

    def test_fits_in_64_bits(self):
        assert 0 <= stable_hash64("x", 123, (1, 2)) < 2**64

    @given(st.lists(st.integers(), min_size=1, max_size=5))
    def test_hashes_arbitrary_int_labels(self, labels):
        h = stable_hash64(*labels)
        assert h == stable_hash64(*labels)


class TestChildRng:
    def test_same_path_same_stream(self):
        a = child_rng(0, "data", 1).random(8)
        b = child_rng(0, "data", 1).random(8)
        np.testing.assert_array_equal(a, b)

    def test_different_seed_different_stream(self):
        a = child_rng(0, "data").random(8)
        b = child_rng(1, "data").random(8)
        assert not np.array_equal(a, b)

    def test_different_labels_different_stream(self):
        a = child_rng(0, "data").random(8)
        b = child_rng(0, "population").random(8)
        assert not np.array_equal(a, b)

    def test_independent_of_call_order(self):
        first = child_rng(0, "x").random()
        child_rng(0, "y").random(100)
        again = child_rng(0, "x").random()
        assert first == again

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_any_seed_valid(self, seed):
        rng = child_rng(seed, "prop")
        assert 0.0 <= rng.random() < 1.0


class TestSpawn:
    def test_spawn_count(self):
        assert len(spawn_rngs(0, "clients", 5)) == 5

    def test_spawned_streams_independent(self):
        rngs = spawn_rngs(0, "clients", 3)
        draws = [r.random(4).tolist() for r in rngs]
        assert draws[0] != draws[1] != draws[2]

    def test_make_rng_reproducible(self):
        assert make_rng(7).random() == make_rng(7).random()
