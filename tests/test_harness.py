"""Tests for the experiment harness: report, KS wrapper, runners, figures."""

import numpy as np
import pytest

from repro.harness import (
    DEFAULT_TARGET_LOSS,
    SMOKE,
    build_async,
    build_sync,
    figure2,
    figure6,
    format_series,
    format_table,
    ks_two_sample,
    make_population,
)
from repro.harness.configs import DEFAULT, PAPER, Scale
from repro.harness.figures import _sync_goal
from repro.utils import child_rng


class TestReport:
    def test_table_alignment(self):
        out = format_table(["a", "bee"], [[1, 2.5], [30, 0.001]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bee" in lines[1]
        assert len(lines) == 5

    def test_table_float_formatting(self):
        out = format_table(["x"], [[1234.5678]])
        assert "1.23e+03" in out
        out = format_table(["x"], [[0.5]])
        assert "0.5" in out

    def test_table_nan(self):
        assert "nan" in format_table(["x"], [[float("nan")]])

    def test_empty_table(self):
        out = format_table(["h1", "h2"], [])
        assert "h1" in out

    def test_series_sparkline(self):
        out = format_series("loss", [0, 1, 2], [3.0, 2.0, 1.0])
        assert out.startswith("loss [1..3]")
        assert any(ch in out for ch in "▁▂▃▄▅▆▇█")

    def test_series_empty(self):
        assert "(empty)" in format_series("x", [], [])

    def test_series_constant(self):
        out = format_series("c", [0, 1], [5.0, 5.0])
        assert "[5..5]" in out


class TestKS:
    def test_identical_samples_match(self):
        rng = child_rng(0, "ks")
        a = rng.normal(size=500)
        res = ks_two_sample(a, a.copy())
        assert res.statistic == 0.0
        assert res.matches()

    def test_shifted_samples_detected(self):
        rng = child_rng(1, "ks")
        a = rng.normal(0, 1, 1000)
        b = rng.normal(1, 1, 1000)
        res = ks_two_sample(a, b)
        assert not res.matches()
        assert res.statistic > 0.2

    def test_same_distribution_matches(self):
        rng = child_rng(2, "ks")
        res = ks_two_sample(rng.normal(size=800), rng.normal(size=800))
        assert res.matches()

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            ks_two_sample(np.array([]), np.array([1.0]))


class TestScales:
    def test_presets_ordered(self):
        assert SMOKE.base_concurrency < DEFAULT.base_concurrency < PAPER.base_concurrency
        assert PAPER.base_concurrency == 1300 and PAPER.base_goal == 100

    def test_paper_sweeps_match_paper(self):
        assert PAPER.concurrency_sweep == (130, 260, 650, 1300, 2600)
        assert PAPER.goal_sweep == (100, 200, 400, 700, 1000, 1300)

    def test_sim_seconds(self):
        s = Scale("t", 10, 2, (10,), (2,), 100, sim_hours=2.0)
        assert s.sim_seconds == 7200.0

    def test_sync_goal_respects_cap(self):
        import math

        for c in (8, 13, 32, 130, 1300, 2600):
            goal = _sync_goal(c)
            assert math.ceil(goal * 1.3) <= c
            assert goal >= 1
        assert _sync_goal(1300) == 1000  # the paper's headline pairing


class TestRunners:
    def test_build_async_runs(self):
        pop = make_population(2000, seed=0)
        sim = build_async(16, 4, pop, seed=0)
        res = sim.run(t_end=600.0)
        assert res.stats("async").server_steps > 0

    def test_build_sync_cohort_sizing(self):
        pop = make_population(2000, seed=0)
        sim = build_sync(10, pop, over_selection=0.3, seed=0)
        cfg = sim.task_runtimes["sync"].config
        assert cfg.concurrency == 13
        assert cfg.aggregation_goal == 10

    def test_target_loss_is_reachable(self):
        # The default target must sit strictly between the surrogate's
        # floor and initial loss, or every figure run would be vacuous.
        from repro.core import SurrogateParams

        p = SurrogateParams()
        assert p.floor_loss < DEFAULT_TARGET_LOSS < p.initial_loss


class TestFigureFunctions:
    def test_figure2_small(self):
        res = figure2(cohort=50, n_hist_samples=1000, n_rounds=3)
        assert res.mean_round_s > res.mean_client_s
        assert res.density.size == res.bin_edges.size - 1

    def test_figure6_custom_goals(self):
        res = figure6(goals=(5, 50))
        assert len(res.naive_ms) == 2
        assert res.naive_ms[1] > res.naive_ms[0] * 9  # linear in K


class TestCLI:
    def test_cli_fig6(self, capsys):
        from repro.harness.__main__ import main

        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "took" in out

    def test_cli_rejects_unknown(self):
        from repro.harness.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig99"])
