"""ScenarioSpec validation and serialization (ISSUE 5 satellite suite).

Three contracts:

* invalid combinations raise :class:`SpecError` whose message leads with
  the offending field name (actionable errors);
* ``ScenarioSpec.from_dict(spec.to_dict()) == spec`` for *any* valid
  spec, including through a JSON byte round trip (hypothesis property
  test over randomized specs);
* dotted override paths address every declarative knob and are applied
  atomically.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    ExecutionSpec,
    PlaneSpec,
    PopulationSpec,
    ScenarioSpec,
    SpecError,
    TaskSpec,
)
from repro.core.types import TrainingMode
from repro.sim.population import DevicePopulation, PopulationConfig


def simple_spec(**kw) -> ScenarioSpec:
    defaults = dict(
        population=PopulationSpec(n_devices=1000, seed=0),
        tasks=(TaskSpec(name="async", mode="async", concurrency=16,
                        aggregation_goal=4, model_size_bytes=1_000_000),),
        execution=ExecutionSpec(seed=0, t_end_s=1800.0),
    )
    defaults.update(kw)
    return ScenarioSpec(**defaults)


class TestValidation:
    def test_no_tasks_rejected(self):
        with pytest.raises(SpecError, match="tasks"):
            simple_spec(tasks=())

    def test_duplicate_task_names_named_in_error(self):
        with pytest.raises(SpecError, match="duplicate task names: x"):
            simple_spec(tasks=(TaskSpec(name="x"), TaskSpec(name="x")))

    def test_bad_mode_names_field(self):
        with pytest.raises(SpecError, match=r"tasks\[t\]\.mode"):
            TaskSpec(name="t", mode="asynchronous")

    def test_secure_plane_cannot_shard(self):
        with pytest.raises(SpecError, match=r"plane\.num_shards"):
            PlaneSpec(name="secure", num_shards=4)

    def test_single_plane_cannot_shard(self):
        with pytest.raises(SpecError, match=r"plane\.num_shards"):
            PlaneSpec(name="single", num_shards=2)

    def test_sharded_plane_at_one_shard_degenerates_to_single(self):
        # The S=1 point of a shard-count sweep: allowed, and it builds the
        # bit-identical single-aggregator path.
        spec = simple_spec(plane=PlaneSpec(name="sharded", num_shards=1))
        cfg = spec.system_config()
        assert cfg.num_shards == 1
        assert cfg.plane == "auto"

    def test_executor_value_validated(self):
        with pytest.raises(SpecError, match=r"plane\.executor"):
            PlaneSpec(name="sharded", num_shards=2, executor="threads")

    def test_process_executor_requires_sharded_plane(self):
        with pytest.raises(SpecError, match=r"plane\.executor"):
            PlaneSpec(name="single", executor="process")
        with pytest.raises(SpecError, match=r"plane\.executor"):
            PlaneSpec(name="secure", executor="process")

    def test_system_rejects_shard_executor_with_pointer(self):
        # Executor choice is plane-owned; the rejection points at the
        # declarative knob that does own it.
        with pytest.raises(SpecError, match=r"plane\.executor"):
            simple_spec(system={"shard_executor": "process"})

    def test_secure_plane_rejects_sync_task(self):
        with pytest.raises(SpecError, match=r"tasks\[0\]\.mode"):
            simple_spec(
                tasks=(TaskSpec(name="s", mode="sync", concurrency=13,
                                aggregation_goal=10),),
                plane=PlaneSpec(name="secure"),
            )

    def test_sharded_plane_needs_an_async_task(self):
        with pytest.raises(SpecError, match=r"plane\.name"):
            simple_spec(
                tasks=(TaskSpec(name="s", mode="sync", concurrency=13,
                                aggregation_goal=10),),
                plane=PlaneSpec(name="sharded", num_shards=2),
            )

    def test_unknown_plane_name_rejected(self):
        with pytest.raises(SpecError, match="registered plane"):
            simple_spec(plane=PlaneSpec(name="quantum"))

    def test_system_rejects_plane_owned_fields(self):
        with pytest.raises(SpecError, match=r"system\.num_shards"):
            simple_spec(system={"num_shards": 4})

    def test_system_rejects_legacy_n_shards_with_pointer(self):
        with pytest.raises(SpecError, match="drain_threads"):
            simple_spec(system={"n_shards": 8})

    def test_system_rejects_unknown_field(self):
        with pytest.raises(SpecError, match=r"system\.bogus"):
            simple_spec(system={"bogus": 1})

    def test_system_value_errors_surface(self):
        with pytest.raises(SpecError, match="system"):
            simple_spec(system={"n_aggregators": 0})

    def test_task_config_errors_carry_task_name(self):
        # async goal > concurrency deadlocks; TaskConfig's error must
        # surface under the task's field path.
        with pytest.raises(SpecError, match=r"tasks\[a\]"):
            simple_spec(tasks=(TaskSpec(name="a", mode="async",
                                        concurrency=4, aggregation_goal=8),))

    def test_population_override_field_checked(self):
        with pytest.raises(SpecError, match=r"population\.overrides\.typo"):
            PopulationSpec(n_devices=10, overrides={"typo": 1})

    def test_population_value_errors_surface(self):
        with pytest.raises(SpecError, match="population"):
            PopulationSpec(n_devices=10, overrides={"dropout_rate": 2.0})

    def test_execution_validation(self):
        with pytest.raises(SpecError, match=r"execution\.t_end_s"):
            ExecutionSpec(t_end_s=-1.0)
        with pytest.raises(SpecError, match=r"execution\.max_server_steps"):
            ExecutionSpec(max_server_steps=0)

    def test_trainer_params_reject_non_json_values(self):
        with pytest.raises(SpecError, match="trainer_params"):
            TaskSpec(name="t", trainer_params={"fn": object()})


class TestDerivedConfigs:
    def test_single_plane_system_config(self):
        cfg = simple_spec().system_config()
        assert cfg.num_shards == 1
        assert cfg.plane == "auto"

    def test_sharded_plane_system_config(self):
        spec = simple_spec(plane=PlaneSpec(name="sharded", num_shards=4,
                                           shard_routing="load"))
        cfg = spec.system_config()
        assert cfg.num_shards == 4
        assert cfg.shard_routing == "load"
        assert cfg.shard_executor == "inline"

    def test_process_executor_system_config(self):
        spec = simple_spec(plane=PlaneSpec(name="sharded", num_shards=4,
                                           executor="process"))
        assert spec.system_config().shard_executor == "process"

    def test_secure_plane_sets_task_secure_flag(self):
        spec = simple_spec(plane=PlaneSpec(name="secure"))
        [cfg] = spec.task_configs()
        assert cfg.secure_aggregation
        assert cfg.mode is TrainingMode.ASYNC

    def test_population_seed_defaults_to_execution_seed(self):
        spec = simple_spec(population=PopulationSpec(n_devices=10),
                           execution=ExecutionSpec(seed=5, t_end_s=1.0))
        assert spec.population_seed() == 5
        pinned = simple_spec(population=PopulationSpec(n_devices=10, seed=2))
        assert pinned.population_seed() == 2

    def test_population_spec_from_population_is_faithful(self):
        pop = DevicePopulation(
            PopulationConfig(n_devices=123, mean_examples=20.0, max_examples=80),
            seed=3,
        )
        spec = PopulationSpec.from_population(pop)
        assert spec.n_devices == 123
        assert spec.seed == 3
        assert spec.population_config() == pop.config


class TestOverrides:
    def test_task_by_index_and_name(self):
        spec = simple_spec()
        assert spec.override("tasks.0.concurrency", 32).tasks[0].concurrency == 32
        assert spec.override("tasks.async.concurrency", 8).tasks[0].concurrency == 8

    def test_trainer_params_path(self):
        spec = simple_spec().override("tasks.0.trainer_params.critical_goal", 7.0)
        assert dict(spec.tasks[0].trainer_params)["critical_goal"] == 7.0

    def test_atomic_interdependent_overrides(self):
        spec = simple_spec().with_overrides(
            {"plane.name": "sharded", "plane.num_shards": 4}
        )
        assert spec.plane.num_shards == 4

    def test_plane_executor_override(self):
        spec = simple_spec().with_overrides({
            "plane.name": "sharded",
            "plane.num_shards": 2,
            "plane.executor": "process",
        })
        assert spec.plane.executor == "process"
        assert spec.system_config().shard_executor == "process"

    def test_seed_alias(self):
        assert simple_spec().override("seed", 9).execution.seed == 9

    def test_population_override_path(self):
        spec = simple_spec().override("population.mean_examples", 12.0)
        assert spec.population.population_config().mean_examples == 12.0

    def test_unknown_paths_rejected(self):
        spec = simple_spec()
        for path in ("tasks.0.bogus", "tasks.9.concurrency", "tasks.nope.mode",
                     "plane.bogus", "execution.bogus", "population.bogus",
                     "nonsense.path"):
            with pytest.raises(SpecError):
                spec.override(path, 1)

    def test_override_result_is_revalidated(self):
        with pytest.raises(SpecError):
            simple_spec().override("tasks.0.aggregation_goal", 10_000)


# ---------------------------------------------------------------------------
# Serialization round trip (property test over randomized specs)
# ---------------------------------------------------------------------------

def _task_specs():
    return st.builds(
        TaskSpec,
        name=st.sampled_from(["a", "b", "lm-task", "τ"]),
        mode=st.sampled_from(["async", "sync"]),
        concurrency=st.integers(8, 64),
        aggregation_goal=st.integers(1, 8),
        over_selection=st.sampled_from([0.0, 0.3]),
        max_staleness=st.integers(1, 200),
        client_timeout_s=st.sampled_from([60.0, 240.0]),
        model_size_bytes=st.sampled_from([1_000, 1_000_000]),
        trainer=st.sampled_from(["surrogate", "external"]),
        trainer_params=st.dictionaries(
            st.sampled_from(["critical_goal", "tau", "beta"]),
            st.floats(0.5, 100.0, allow_nan=False),
            max_size=2,
        ),
    )


def _scenario_specs():
    plane = st.one_of(
        st.builds(PlaneSpec, name=st.just("single")),
        st.builds(
            PlaneSpec,
            name=st.just("sharded"),
            num_shards=st.integers(2, 8),
            shard_routing=st.sampled_from(["hash", "load"]),
            executor=st.sampled_from(["inline", "process"]),
        ),
        st.builds(PlaneSpec, name=st.just("secure")),
    )
    return st.builds(
        lambda population, task, plane, system, execution: ScenarioSpec(
            population=population,
            tasks=(task,),
            plane=plane,
            system=system,
            execution=execution,
        ),
        population=st.builds(
            PopulationSpec,
            n_devices=st.integers(10, 10_000),
            seed=st.one_of(st.none(), st.integers(0, 100)),
            overrides=st.dictionaries(
                st.sampled_from(["mean_examples", "dropout_rate"]),
                st.floats(0.01, 0.5, allow_nan=False),
                max_size=2,
            ),
        ),
        # secure plane requires async; generate async-only tasks and let
        # sync coverage come from the single/sharded cases via filter.
        task=_task_specs().filter(lambda t: t.mode == "async"),
        plane=plane,
        system=st.dictionaries(
            st.sampled_from(
                ["n_aggregators", "drain_threads", "cohort_batch_size"]
            ),
            st.integers(1, 4),
            max_size=3,
        ),
        execution=st.builds(
            ExecutionSpec,
            seed=st.integers(0, 1000),
            t_end_s=st.one_of(st.none(), st.floats(1.0, 1e6, allow_nan=False)),
            target_loss=st.one_of(st.none(), st.floats(2.0, 4.0, allow_nan=False)),
            max_server_steps=st.one_of(st.none(), st.integers(1, 100)),
        ),
    )


class TestSerialization:
    @settings(max_examples=60, deadline=None)
    @given(_scenario_specs())
    def test_dict_round_trip_is_identity(self, spec):
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    @settings(max_examples=30, deadline=None)
    @given(_scenario_specs())
    def test_json_byte_round_trip_is_identity(self, spec):
        blob = json.dumps(spec.to_dict(), sort_keys=True)
        assert ScenarioSpec.from_dict(json.loads(blob)) == spec
        # Canonical serialization is stable (what sweep fingerprints hash).
        again = json.dumps(ScenarioSpec.from_dict(json.loads(blob)).to_dict(),
                           sort_keys=True)
        assert again == blob

    def test_sync_task_round_trip(self):
        spec = simple_spec(
            tasks=(TaskSpec(name="sync", mode="sync", concurrency=13,
                            aggregation_goal=10, over_selection=0.3),),
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_sections(self):
        doc = simple_spec().to_dict()
        doc["extra"] = {}
        with pytest.raises(SpecError, match="unknown keys"):
            ScenarioSpec.from_dict(doc)

    def test_from_dict_requires_population(self):
        with pytest.raises(SpecError, match="population"):
            ScenarioSpec.from_dict({"tasks": [{"name": "t"}]})

    def test_executor_default_omitted_from_canonical_json(self):
        # Pre-existing sweep-cache fingerprints hash the canonical spec
        # JSON; the new knob must not shift them at its default.
        spec = simple_spec(plane=PlaneSpec(name="sharded", num_shards=2))
        assert "executor" not in spec.to_dict()["plane"]
        process = simple_spec(plane=PlaneSpec(name="sharded", num_shards=2,
                                              executor="process"))
        assert process.to_dict()["plane"]["executor"] == "process"
        assert ScenarioSpec.from_dict(process.to_dict()) == process

    def test_from_dict_defaults_optional_sections(self):
        spec = ScenarioSpec.from_dict(
            {"population": {"n_devices": 50}, "tasks": [{"name": "t"}]}
        )
        assert spec.plane == PlaneSpec()
        assert spec.execution == ExecutionSpec()
        assert spec.system == ()


class TestColumnarKnob:
    def test_defaults_off_and_omitted_from_canonical_json(self):
        spec = simple_spec()
        assert spec.population.columnar is False
        # Omitted when False so pre-existing sweep-cache fingerprints
        # (which hash the canonical spec JSON) are unchanged.
        assert "columnar" not in spec.to_dict()["population"]

    def test_roundtrips_when_enabled(self):
        spec = simple_spec(
            population=PopulationSpec(n_devices=1000, seed=0, columnar=True)
        )
        doc = spec.to_dict()
        assert doc["population"]["columnar"] is True
        assert ScenarioSpec.from_dict(doc) == spec
        assert ScenarioSpec.from_dict(json.loads(json.dumps(doc))) == spec

    def test_override_path(self):
        flipped = simple_spec().override("population.columnar", True)
        assert flipped.population.columnar is True
        assert simple_spec().population.columnar is False

    def test_from_population_detects_representation(self):
        from repro.sim.population import ColumnarDevicePopulation

        cfg = PopulationConfig(n_devices=500)
        assert PopulationSpec.from_population(
            ColumnarDevicePopulation(cfg, seed=2)
        ).columnar is True
        assert PopulationSpec.from_population(
            DevicePopulation(cfg, seed=2)
        ).columnar is False

    def test_build_population_switches_representation(self):
        from repro.api.deployment import build_population
        from repro.sim.population import ColumnarDevicePopulation

        scalar = build_population(PopulationSpec(n_devices=500, seed=1))
        assert type(scalar) is DevicePopulation
        columnar = build_population(
            PopulationSpec(n_devices=500, seed=1, columnar=True)
        )
        assert type(columnar) is ColumnarDevicePopulation
        # Same distribution parameters flow into both representations.
        assert columnar.config == scalar.config

    def test_deployment_population_honours_knob(self):
        from repro.api import Deployment
        from repro.sim.population import ColumnarDevicePopulation

        spec = simple_spec().override("population.columnar", True)
        assert isinstance(
            Deployment.from_spec(spec).population, ColumnarDevicePopulation
        )
