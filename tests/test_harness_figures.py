"""Structural tests of the figure regenerators at a tiny scale.

The benchmarks assert the paper's quantitative shapes at the SMOKE scale;
these tests assert the *structural contracts* of every regenerator (fields
populated, series aligned, invariants hold) at an even smaller scale so
``pytest tests/`` exercises the whole harness quickly.
"""

import numpy as np
import pytest

from repro.harness import figure7, figure8, figure9, figure10, figure11, figure12, figure13
from repro.harness.configs import Scale

TINY = Scale(
    name="tiny",
    base_concurrency=12,
    base_goal=3,
    concurrency_sweep=(6, 12),
    goal_sweep=(3, 6, 12),
    population=3000,
    sim_hours=1.0,
    critical_goal=5.0,
)


@pytest.fixture(scope="module")
def fig9_result():
    return figure9(scale=TINY, target_loss=2.8)


class TestFigure7Structure:
    @pytest.fixture(scope="class")
    def res(self):
        return figure7(scale=TINY, duration_h=0.4)

    def test_series_aligned(self, res):
        assert len(res.sync_times) == len(res.sync_active)
        assert len(res.async_times) == len(res.async_active)

    def test_utilizations_in_unit_interval(self, res):
        assert 0.0 <= res.sync_utilization <= 1.0
        assert 0.0 <= res.async_utilization <= 1.0

    def test_async_sustains_more(self, res):
        assert res.async_utilization > res.sync_utilization


class TestFigure8Structure:
    def test_rates_positive_and_async_wins(self):
        res = figure8(scale=TINY, duration_h=0.4)
        assert len(res.sync_steps_per_hour) == len(TINY.concurrency_sweep)
        for s, a in zip(res.sync_steps_per_hour, res.async_steps_per_hour):
            assert s > 0 and a > s


class TestFigure9Structure:
    def test_rows_complete(self, fig9_result):
        assert [r.concurrency for r in fig9_result.rows] == list(TINY.concurrency_sweep)
        for r in fig9_result.rows:
            assert r.sync_hours is None or r.sync_hours > 0
            assert r.async_hours is None or r.async_hours > 0

    def test_trips_counted_up_to_target_only(self, fig9_result):
        for r in fig9_result.rows:
            assert r.sync_trips >= 0 and r.async_trips >= 0

    def test_async_not_slower(self, fig9_result):
        for r in fig9_result.rows:
            if r.speedup is not None:
                assert r.speedup > 0.8


class TestFigure10Structure:
    def test_goal_sweep_capped_by_concurrency(self):
        res = figure10(scale=TINY, target_loss=2.8)
        assert all(r.goal <= TINY.base_concurrency for r in res.rows)
        assert all(r.steps_per_hour > 0 for r in res.rows)


class TestFigure11Structure:
    @pytest.fixture(scope="class")
    def res(self):
        return figure11(scale=TINY, duration_h=1.5)

    def test_samples_nonempty(self, res):
        for arr in (res.truth_exec, res.sync_os_exec, res.async_exec,
                    res.truth_examples, res.sync_os_examples, res.async_examples):
            assert len(arr) > 0

    def test_ks_results_valid(self, res):
        for ks in (res.ks_async_exec, res.ks_sync_os_exec,
                   res.ks_async_examples, res.ks_sync_os_examples):
            assert 0.0 <= ks.statistic <= 1.0
            assert 0.0 <= ks.pvalue <= 1.0

    def test_os_bias_direction(self, res):
        # Even at tiny scale over-selection must skew toward fast clients.
        assert res.sync_os_exec.mean() < res.truth_exec.mean()


class TestFigure12And13Structure:
    def test_figure12_has_four_curves(self):
        res = figure12(scale=TINY, duration_h=0.5)
        assert len(res.curves) == 4
        for name, (t, l) in res.curves.items():
            assert len(t) == len(l)
            assert len(t) > 0, name
            assert np.all(np.diff(t) >= 0)

    def test_figure13_reports_all_configs(self):
        res = figure13(scale=TINY, target_loss=2.8)
        assert set(res.hours) == {
            "async_small_k", "async_big_k", "sync_with_os", "sync_without_os"
        }
        reached = {k: v for k, v in res.hours.items() if v is not None}
        assert "async_small_k" in reached
