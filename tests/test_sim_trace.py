"""Tests for the metrics trace."""

import numpy as np
import pytest

from repro.sim import (
    BoundedMetricsTrace,
    MetricsTrace,
    Outcome,
    ParticipationRecord,
    ServerStepRecord,
)


def part(device=0, task="t", outcome=Outcome.AGGREGATED, n=10, exec_t=5.0, stal=0,
         start=0.0, end=10.0):
    return ParticipationRecord(
        device_id=device, task=task, start_time=start, end_time=end,
        n_examples=n, execution_time=exec_t, outcome=outcome, staleness=stal,
    )


def step(time=0.0, task="t", version=1, n=10, stal=0.0, loss=1.0):
    return ServerStepRecord(
        time=time, task=task, version=version, num_updates=n,
        mean_staleness=stal, loss=loss,
    )


class TestActiveSeries:
    def test_cumulative_counts(self):
        tr = MetricsTrace()
        tr.record_active_delta(0.0, +1)
        tr.record_active_delta(1.0, +1)
        tr.record_active_delta(2.0, -1)
        times, counts = tr.active_series()
        np.testing.assert_array_equal(times, [0.0, 1.0, 2.0])
        np.testing.assert_array_equal(counts, [1, 2, 1])

    def test_empty_series(self):
        times, counts = MetricsTrace().active_series()
        assert counts[0] == 0

    def test_mean_utilization_full(self):
        tr = MetricsTrace()
        tr.record_active_delta(0.0, +10)
        tr.record_active_delta(10.0, -10)
        assert tr.mean_utilization(10, 0.0, 10.0) == pytest.approx(1.0)

    def test_mean_utilization_half(self):
        tr = MetricsTrace()
        tr.record_active_delta(0.0, +5)
        tr.record_active_delta(10.0, -5)
        assert tr.mean_utilization(10, 0.0, 10.0) == pytest.approx(0.5)

    def test_mean_utilization_window(self):
        tr = MetricsTrace()
        tr.record_active_delta(0.0, +10)
        tr.record_active_delta(5.0, -10)  # idle in the second half
        assert tr.mean_utilization(10, 0.0, 10.0) == pytest.approx(0.5)
        assert tr.mean_utilization(10, 0.0, 5.0) == pytest.approx(1.0)

    def test_utilization_degenerate(self):
        assert MetricsTrace().mean_utilization(0) == 0.0
        tr = MetricsTrace()
        tr.record_active_delta(1.0, +1)
        assert tr.mean_utilization(1, 5.0, 5.0) == 0.0


class TestLossCurve:
    def test_time_to_loss(self):
        tr = MetricsTrace()
        for i, loss in enumerate([3.0, 2.5, 2.0, 1.5]):
            tr.record_server_step(step(time=float(i), version=i + 1, loss=loss))
        assert tr.time_to_loss(2.2) == 2.0
        assert tr.time_to_loss(1.0) is None

    def test_loss_curve_filters_task(self):
        tr = MetricsTrace()
        tr.record_server_step(step(task="a", loss=1.0))
        tr.record_server_step(step(task="b", loss=2.0))
        _, losses = tr.loss_curve("b")
        np.testing.assert_array_equal(losses, [2.0])

    def test_steps_per_hour(self):
        tr = MetricsTrace()
        for i in range(11):
            tr.record_server_step(step(time=i * 360.0, version=i + 1))
        assert tr.steps_per_hour() == pytest.approx(10.0)

    def test_steps_per_hour_insufficient_data(self):
        tr = MetricsTrace()
        assert tr.steps_per_hour() == 0.0
        tr.record_server_step(step())
        assert tr.steps_per_hour() == 0.0

    def test_fast_views_updated(self):
        tr = MetricsTrace()
        tr.record_server_step(step(task="x", loss=0.7))
        assert tr.step_counts["x"] == 1
        assert tr.last_loss["x"] == 0.7


class TestParticipations:
    def test_outcome_counts(self):
        tr = MetricsTrace()
        tr.record_participation(part(outcome=Outcome.AGGREGATED))
        tr.record_participation(part(outcome=Outcome.AGGREGATED))
        tr.record_participation(part(outcome=Outcome.FAILED))
        counts = tr.outcome_counts()
        assert counts[Outcome.AGGREGATED] == 2
        assert counts[Outcome.FAILED] == 1
        assert counts[Outcome.DISCARDED] == 0

    def test_aggregated_filter_and_staleness(self):
        tr = MetricsTrace()
        tr.record_participation(part(outcome=Outcome.AGGREGATED, stal=3))
        tr.record_participation(part(outcome=Outcome.DISCARDED, stal=9))
        assert len(tr.aggregated_participations()) == 1
        np.testing.assert_array_equal(tr.staleness_values(), [3.0])

    def test_comm_counters(self):
        tr = MetricsTrace()
        tr.record_upload(100)
        tr.record_upload(100)
        tr.record_download(50)
        assert tr.uploads == 2 and tr.downloads == 1
        assert tr.upload_bytes == 200 and tr.download_bytes == 50


class TestExport:
    def test_to_dict_roundtrips_records(self):
        tr = MetricsTrace()
        tr.record_participation(part(device=3, outcome=Outcome.FAILED, stal=2))
        tr.record_server_step(step(task="x", loss=1.25))
        tr.record_upload(10)
        d = tr.to_dict()
        assert d["participations"][0]["device_id"] == 3
        assert d["participations"][0]["outcome"] == "failed"
        assert d["server_steps"][0]["loss"] == 1.25
        assert d["uploads"] == 1

    def test_export_json_is_loadable(self, tmp_path):
        import json

        tr = MetricsTrace()
        tr.record_participation(part())
        tr.record_server_step(step())
        path = tmp_path / "trace.json"
        tr.export_json(str(path))
        loaded = json.loads(path.read_text())
        assert len(loaded["participations"]) == 1
        assert len(loaded["server_steps"]) == 1


class TestBoundedTraceValidation:
    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            BoundedMetricsTrace(max_records=0)
        with pytest.raises(ValueError):
            BoundedMetricsTrace(policy="fifo")
        with pytest.raises(ValueError):
            BoundedMetricsTrace(active_bin_s=0.0)


class TestBoundedTraceSampling:
    def test_under_capacity_keeps_everything(self):
        tr = BoundedMetricsTrace(max_records=100)
        for i in range(40):
            tr.record_participation(part(device=i))
        assert [r.device_id for r in tr.participations] == list(range(40))
        assert tr.total_participations == 40

    def test_reservoir_is_bounded_and_uniformish(self):
        tr = BoundedMetricsTrace(max_records=50, policy="reservoir", seed=0)
        for i in range(5_000):
            tr.record_participation(part(device=i))
        assert len(tr.participations) == 50
        assert tr.total_participations == 5_000
        # A uniform sample over the whole run, not just its head/tail.
        kept = sorted(r.device_id for r in tr.participations)
        assert kept[0] < 1_000 and kept[-1] >= 4_000

    def test_reservoir_is_deterministic(self):
        def run(seed):
            tr = BoundedMetricsTrace(max_records=20, seed=seed)
            for i in range(1_000):
                tr.record_participation(part(device=i))
            return [r.device_id for r in tr.participations]

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_ring_keeps_most_recent(self):
        tr = BoundedMetricsTrace(max_records=10, policy="ring")
        for i in range(100):
            tr.record_participation(part(device=i))
        assert [r.device_id for r in tr.participations] == list(range(90, 100))
        assert tr.total_participations == 100

    def test_exact_tallies_survive_sampling(self):
        tr = BoundedMetricsTrace(max_records=5, seed=1)
        for i in range(300):
            out = Outcome.FAILED if i % 3 == 0 else Outcome.AGGREGATED
            tr.record_participation(part(device=i, outcome=out))
            tr.record_upload(10)
        counts = tr.outcome_counts()
        assert counts[Outcome.FAILED] == 100
        assert counts[Outcome.AGGREGATED] == 200
        assert tr.uploads == 300 and tr.upload_bytes == 3_000

    def test_memory_estimate_is_bounded(self):
        tr = BoundedMetricsTrace(max_records=100, active_bin_s=60.0)
        for i in range(10_000):
            tr.record_participation(part(device=i))
            tr.record_active_delta(float(i % 600), +1)
        # Bins cover a fixed 600 s window; records cap at 100.
        assert tr.approx_bytes() < 100 * 200 + 600 * 100 + 1


class TestBoundedActiveSeries:
    def test_binned_series_cumulates(self):
        tr = BoundedMetricsTrace(active_bin_s=60.0)
        tr.record_active_delta(10.0, +1)    # bin 0
        tr.record_active_delta(30.0, +1)    # bin 0
        tr.record_active_delta(70.0, -1)    # bin 1
        times, counts = tr.active_series()
        np.testing.assert_array_equal(times, [0.0, 60.0])
        np.testing.assert_array_equal(counts, [2, 1])

    def test_peak_active_is_exact_within_bins(self):
        tr = BoundedMetricsTrace(active_bin_s=3600.0)
        for _ in range(7):
            tr.record_active_delta(5.0, +1)
        for _ in range(7):
            tr.record_active_delta(6.0, -1)
        # The bin nets to zero but the true peak was seen.
        assert tr.peak_active == 7
        _, counts = tr.active_series()
        assert counts[-1] == 0

    def test_empty_series(self):
        times, counts = BoundedMetricsTrace().active_series()
        assert counts[0] == 0


class TestBoundedExport:
    def test_to_dict_flags_sampling(self):
        tr = BoundedMetricsTrace(max_records=2, policy="ring")
        for i in range(5):
            tr.record_participation(part(device=i, outcome=Outcome.FAILED))
        d = tr.to_dict()
        assert d["trace_policy"] == "ring"
        assert d["max_records"] == 2
        assert d["total_participations"] == 5
        assert d["outcome_totals"]["failed"] == 5
        assert len(d["participations"]) == 2

    def test_server_steps_stay_exact(self):
        tr = BoundedMetricsTrace(max_records=1)
        for v in range(10):
            tr.record_server_step(step(time=float(v), version=v))
        assert len(tr.server_steps) == 10
        assert tr.step_counts["t"] == 10
