"""Tests for the metrics trace."""

import numpy as np
import pytest

from repro.sim import MetricsTrace, Outcome, ParticipationRecord, ServerStepRecord


def part(device=0, task="t", outcome=Outcome.AGGREGATED, n=10, exec_t=5.0, stal=0,
         start=0.0, end=10.0):
    return ParticipationRecord(
        device_id=device, task=task, start_time=start, end_time=end,
        n_examples=n, execution_time=exec_t, outcome=outcome, staleness=stal,
    )


def step(time=0.0, task="t", version=1, n=10, stal=0.0, loss=1.0):
    return ServerStepRecord(
        time=time, task=task, version=version, num_updates=n,
        mean_staleness=stal, loss=loss,
    )


class TestActiveSeries:
    def test_cumulative_counts(self):
        tr = MetricsTrace()
        tr.record_active_delta(0.0, +1)
        tr.record_active_delta(1.0, +1)
        tr.record_active_delta(2.0, -1)
        times, counts = tr.active_series()
        np.testing.assert_array_equal(times, [0.0, 1.0, 2.0])
        np.testing.assert_array_equal(counts, [1, 2, 1])

    def test_empty_series(self):
        times, counts = MetricsTrace().active_series()
        assert counts[0] == 0

    def test_mean_utilization_full(self):
        tr = MetricsTrace()
        tr.record_active_delta(0.0, +10)
        tr.record_active_delta(10.0, -10)
        assert tr.mean_utilization(10, 0.0, 10.0) == pytest.approx(1.0)

    def test_mean_utilization_half(self):
        tr = MetricsTrace()
        tr.record_active_delta(0.0, +5)
        tr.record_active_delta(10.0, -5)
        assert tr.mean_utilization(10, 0.0, 10.0) == pytest.approx(0.5)

    def test_mean_utilization_window(self):
        tr = MetricsTrace()
        tr.record_active_delta(0.0, +10)
        tr.record_active_delta(5.0, -10)  # idle in the second half
        assert tr.mean_utilization(10, 0.0, 10.0) == pytest.approx(0.5)
        assert tr.mean_utilization(10, 0.0, 5.0) == pytest.approx(1.0)

    def test_utilization_degenerate(self):
        assert MetricsTrace().mean_utilization(0) == 0.0
        tr = MetricsTrace()
        tr.record_active_delta(1.0, +1)
        assert tr.mean_utilization(1, 5.0, 5.0) == 0.0


class TestLossCurve:
    def test_time_to_loss(self):
        tr = MetricsTrace()
        for i, loss in enumerate([3.0, 2.5, 2.0, 1.5]):
            tr.record_server_step(step(time=float(i), version=i + 1, loss=loss))
        assert tr.time_to_loss(2.2) == 2.0
        assert tr.time_to_loss(1.0) is None

    def test_loss_curve_filters_task(self):
        tr = MetricsTrace()
        tr.record_server_step(step(task="a", loss=1.0))
        tr.record_server_step(step(task="b", loss=2.0))
        _, losses = tr.loss_curve("b")
        np.testing.assert_array_equal(losses, [2.0])

    def test_steps_per_hour(self):
        tr = MetricsTrace()
        for i in range(11):
            tr.record_server_step(step(time=i * 360.0, version=i + 1))
        assert tr.steps_per_hour() == pytest.approx(10.0)

    def test_steps_per_hour_insufficient_data(self):
        tr = MetricsTrace()
        assert tr.steps_per_hour() == 0.0
        tr.record_server_step(step())
        assert tr.steps_per_hour() == 0.0

    def test_fast_views_updated(self):
        tr = MetricsTrace()
        tr.record_server_step(step(task="x", loss=0.7))
        assert tr.step_counts["x"] == 1
        assert tr.last_loss["x"] == 0.7


class TestParticipations:
    def test_outcome_counts(self):
        tr = MetricsTrace()
        tr.record_participation(part(outcome=Outcome.AGGREGATED))
        tr.record_participation(part(outcome=Outcome.AGGREGATED))
        tr.record_participation(part(outcome=Outcome.FAILED))
        counts = tr.outcome_counts()
        assert counts[Outcome.AGGREGATED] == 2
        assert counts[Outcome.FAILED] == 1
        assert counts[Outcome.DISCARDED] == 0

    def test_aggregated_filter_and_staleness(self):
        tr = MetricsTrace()
        tr.record_participation(part(outcome=Outcome.AGGREGATED, stal=3))
        tr.record_participation(part(outcome=Outcome.DISCARDED, stal=9))
        assert len(tr.aggregated_participations()) == 1
        np.testing.assert_array_equal(tr.staleness_values(), [3.0])

    def test_comm_counters(self):
        tr = MetricsTrace()
        tr.record_upload(100)
        tr.record_upload(100)
        tr.record_download(50)
        assert tr.uploads == 2 and tr.downloads == 1
        assert tr.upload_bytes == 200 and tr.download_bytes == 50


class TestExport:
    def test_to_dict_roundtrips_records(self):
        tr = MetricsTrace()
        tr.record_participation(part(device=3, outcome=Outcome.FAILED, stal=2))
        tr.record_server_step(step(task="x", loss=1.25))
        tr.record_upload(10)
        d = tr.to_dict()
        assert d["participations"][0]["device_id"] == 3
        assert d["participations"][0]["outcome"] == "failed"
        assert d["server_steps"][0]["loss"] == 1.25
        assert d["uploads"] == 1

    def test_export_json_is_loadable(self, tmp_path):
        import json

        tr = MetricsTrace()
        tr.record_participation(part())
        tr.record_server_step(step())
        path = tmp_path / "trace.json"
        tr.export_json(str(path))
        loaded = json.loads(path.read_text())
        assert len(loaded["participations"]) == 1
        assert len(loaded["server_steps"]) == 1
