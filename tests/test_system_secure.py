"""Tests for FedBuff-through-SecAgg (the paper's headline integration)."""

import numpy as np
import pytest

from repro.core import (
    FedAdam,
    FedSGD,
    GlobalModelState,
    LocalTrainer,
    TaskConfig,
    TrainingMode,
    TrainingResult,
)
from repro.data import CorpusSpec, FederatedDataset, TopicMarkovCorpus
from repro.nn import LSTMLanguageModel, ModelConfig
from repro.sim import DevicePopulation, PopulationConfig
from repro.system import (
    FederatedSimulation,
    RealTrainingAdapter,
    SecureBufferedAggregator,
    SurrogateAdapter,
)


def make_state(dim=8):
    return GlobalModelState(np.zeros(dim, dtype=np.float32), FedSGD(lr=1.0))


def result(cid, delta, n=1, version=0):
    return TrainingResult(
        client_id=cid,
        delta=np.asarray(delta, dtype=np.float32),
        num_examples=n,
        train_loss=1.0,
        initial_version=version,
    )


class TestSecureBufferedAggregator:
    def test_secure_step_matches_plain_weighted_mean(self):
        # Two clients with different example counts: the securely
        # aggregated step must equal the plain FedBuff weighted mean to
        # fixed-point precision.
        agg = SecureBufferedAggregator(make_state(4), goal=2, vector_length=4, seed=0)
        agg.register_download(0)
        agg.register_download(1)
        agg.receive_update(result(0, [1.0, 0, 0, 0], n=3))
        upd, info = agg.receive_update(result(1, [3.0, 0, 0, 0], n=1))
        assert info is not None and info.version == 1
        # weighted mean = (3*1 + 1*3) / 4 = 1.5
        np.testing.assert_allclose(agg.state.current()[0], 1.5, atol=0.01)

    def test_staleness_weight_applied_securely(self):
        agg = SecureBufferedAggregator(
            make_state(1), goal=2, vector_length=1,
            example_weighting="none", seed=0,
        )
        agg.register_download(0)  # will become stale
        # Advance the version by 3 via goal-sized batches of zero updates.
        for v in range(3):
            a, b = 10 + 2 * v, 11 + 2 * v
            agg.register_download(a)
            agg.register_download(b)
            agg.receive_update(result(a, [0.0], version=v))
            agg.receive_update(result(b, [0.0], version=v))
        assert agg.version == 3
        agg.register_download(1)
        agg.receive_update(result(1, [0.0], version=3))  # fresh, w=1
        upd, info = agg.receive_update(result(0, [3.0], version=0))  # s=3, w=0.5
        assert upd.staleness == 3
        # mean = 3 * 0.5 / 1.5 = 1.0
        np.testing.assert_allclose(agg.state.current()[0], 1.0, atol=0.01)

    def test_version_and_epochs_advance(self):
        agg = SecureBufferedAggregator(make_state(2), goal=2, vector_length=2, seed=1)
        for step in range(3):
            a, b = 2 * step, 2 * step + 1
            agg.register_download(a)
            agg.register_download(b)
            agg.receive_update(result(a, [0.5, -0.5], version=step))
            agg.receive_update(result(b, [0.5, -0.5], version=step))
        assert agg.version == 3
        assert agg.epochs_completed == 3
        assert agg.boundary_bytes_in_total > 0

    def test_unknown_client_rejected(self):
        agg = SecureBufferedAggregator(make_state(2), goal=2, vector_length=2)
        with pytest.raises(KeyError):
            agg.receive_update(result(99, [0.0, 0.0]))

    def test_version_mismatch_rejected(self):
        agg = SecureBufferedAggregator(make_state(2), goal=2, vector_length=2)
        agg.register_download(0)
        with pytest.raises(ValueError):
            agg.receive_update(result(0, [0.0, 0.0], version=7))

    def test_stale_clients_reported(self):
        agg = SecureBufferedAggregator(
            make_state(1), goal=1, vector_length=1, max_staleness=1, seed=2
        )
        agg.register_download(0)
        for v in range(3):
            cid = 10 + v
            agg.register_download(cid)
            agg.receive_update(result(cid, [0.0], version=v))
        assert agg.stale_clients() == [0]

    def test_failover_drops_epoch(self):
        agg = SecureBufferedAggregator(make_state(1), goal=3, vector_length=1, seed=3)
        agg.register_download(0)
        agg.receive_update(result(0, [1.0]))
        assert agg.buffered_count == 1
        lost, dropped = agg.drop_buffer_and_inflight()
        assert lost == 1 and dropped == []
        assert agg.buffered_count == 0
        # A fresh epoch accepts new contributions and still steps.
        for cid in (1, 2, 3):
            agg.register_download(cid)
            agg.receive_update(result(cid, [1.0]))
        assert agg.version == 1

    def test_clipping_bounds_large_deltas(self):
        agg = SecureBufferedAggregator(
            make_state(1), goal=1, vector_length=1, clip_value=2.0, seed=4,
            example_weighting="none",
        )
        agg.register_download(0)
        agg.receive_update(result(0, [100.0]))
        assert agg.state.current()[0] == pytest.approx(2.0, abs=0.01)

    def test_weight_quantization_minimum(self):
        # A near-zero staleness weight must still count as >= 1/WEIGHT_SCALE
        # so the TSA threshold bookkeeping stays consistent.
        agg = SecureBufferedAggregator(
            make_state(1), goal=1, vector_length=1, seed=5,
            example_weighting="none",
        )
        agg.register_download(0)
        upd, info = agg.receive_update(result(0, [1.0]))
        assert info is not None
        np.testing.assert_allclose(agg.state.current()[0], 1.0, atol=0.01)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SecureBufferedAggregator(make_state(1), goal=0, vector_length=1)
        with pytest.raises(ValueError):
            SecureBufferedAggregator(make_state(1), goal=1, vector_length=1,
                                     example_weighting="bogus")


class TestSecureSystemIntegration:
    def test_secure_async_simulation_runs(self):
        pop = DevicePopulation(PopulationConfig(n_devices=500), seed=0)
        cfg = TaskConfig(
            name="secure", mode=TrainingMode.ASYNC, concurrency=12,
            aggregation_goal=4, secure_aggregation=True,
            model_size_bytes=100_000,
        )
        fs = FederatedSimulation([(cfg, SurrogateAdapter(seed=0))], pop, seed=0)
        res = fs.run(t_end=1200.0, max_server_steps=8)
        s = res.stats()
        assert s.server_steps == 8
        assert s.aggregated >= 32

    def test_secure_sync_rejected(self):
        pop = DevicePopulation(PopulationConfig(n_devices=100), seed=0)
        cfg = TaskConfig(
            name="bad", mode=TrainingMode.SYNC, concurrency=12,
            aggregation_goal=4, secure_aggregation=True,
        )
        with pytest.raises(ValueError, match="Asynchronous SecAgg"):
            FederatedSimulation([(cfg, SurrogateAdapter(seed=0))], pop, seed=0)

    def test_secure_real_training_improves_loss(self):
        model_cfg = ModelConfig(vocab_size=16, embed_dim=6, hidden_dim=8)
        corpus = TopicMarkovCorpus(CorpusSpec(vocab_size=16, seq_len=8), seed=1)
        dataset = FederatedDataset(corpus)
        model = LSTMLanguageModel(model_cfg, seed=0)
        state = GlobalModelState(model.get_flat(), FedAdam(lr=0.05))
        trainer = LocalTrainer(model_cfg, lr=0.5, batch_size=8, seed=0)
        pop = DevicePopulation(
            PopulationConfig(n_devices=100, mean_examples=15, max_examples=40), seed=1
        )
        adapter = RealTrainingAdapter(
            trainer, dataset, state,
            eval_clients=list(range(8)),
            eval_examples=[pop.profile(i).n_examples for i in range(8)],
        )
        cfg = TaskConfig(
            name="secure-real", mode=TrainingMode.ASYNC, concurrency=8,
            aggregation_goal=3, secure_aggregation=True,
            model_size_bytes=100_000,
        )
        fs = FederatedSimulation([(cfg, adapter)], pop, seed=1)
        res = fs.run(t_end=3e6, max_server_steps=6)
        _, losses = res.trace.loss_curve("secure-real")
        assert len(losses) == 6
        assert losses[-1] < losses[0]

    def test_secure_matches_plain_loss_trajectory(self):
        # The privacy machinery must be computationally transparent:
        # secure and plain runs of the same surrogate config should land
        # at nearly identical losses.
        pop = DevicePopulation(PopulationConfig(n_devices=500), seed=2)

        def run(secure):
            cfg = TaskConfig(
                name="t", mode=TrainingMode.ASYNC, concurrency=12,
                aggregation_goal=4, secure_aggregation=secure,
                model_size_bytes=100_000,
            )
            fs = FederatedSimulation([(cfg, SurrogateAdapter(seed=3))], pop, seed=3)
            res = fs.run(t_end=3600.0, max_server_steps=10)
            return res.stats().final_loss

        plain, secure = run(False), run(True)
        assert secure == pytest.approx(plain, rel=0.05)
