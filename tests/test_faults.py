"""Fault-injection plane, retry/backoff policies, and recovery contracts.

The contracts this suite pins:

* :class:`BackoffPolicy` / :class:`RetryPolicy` parse a compact string
  grammar, validate their fields, and — on the default policies —
  consume the RNG stream *exactly* as the legacy hard-coded jitter did
  (bit-identity of every pre-existing trace);
* :class:`FaultSpec` is frozen, JSON-round-trippable, validated with
  field-named :class:`SpecError`\\ s, and *omitted* from the canonical
  document when empty (sweep-cache fingerprints unchanged);
* a deployment with ``FaultSpec == none`` builds no injector at all,
  and the same spec + seed + schedule replays bit-identically;
* the recovery invariants — device conservation, update conservation
  (no aggregated update lost or double-counted across failover) — hold
  under **every** canned adversarial spec in ``examples/scenarios/``;
* the deprecated ``inject_*`` shims route through the FaultSpec path
  unchanged, and coordinator failover emits structured events.
"""

import copy
import hashlib
import json
import pathlib

import numpy as np
import pytest

from repro.api import (
    Deployment,
    ExecutionSpec,
    FaultEvent,
    FaultSpec,
    PlaneSpec,
    PopulationSpec,
    ScenarioSpec,
    SpecError,
    TaskSpec,
)
from repro.sim.faults import (
    FAULT_KINDS,
    FaultParamError,
    event_end_s,
    recovery_report,
    validate_fault_params,
)
from repro.utils.backoff import BackoffPolicy, RetryPolicy
from repro.utils.rng import child_rng

SCENARIO_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples" / "scenarios"
SCENARIO_FILES = sorted(SCENARIO_DIR.glob("*.json"))


def small_spec(faults=None, plane=None, **execution) -> ScenarioSpec:
    execution.setdefault("seed", 0)
    execution.setdefault("t_end_s", 1200.0)
    return ScenarioSpec(
        population=PopulationSpec(n_devices=400),
        tasks=(TaskSpec(name="train", mode="async", concurrency=24,
                        aggregation_goal=4, model_size_bytes=1_000_000),),
        plane=plane or PlaneSpec(),
        execution=ExecutionSpec(**execution),
        faults=faults or FaultSpec(),
    )


def trace_fingerprint(result) -> str:
    h = hashlib.sha256()
    for p in result.trace.participations:
        h.update(repr((p.device_id, p.task, p.start_time,
                       p.end_time, p.outcome)).encode())
    for s in result.trace.server_steps:
        h.update(repr((s.time, s.task, s.version, s.num_updates, s.loss)).encode())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Backoff / retry policies
# ---------------------------------------------------------------------------


class TestBackoffPolicy:
    def test_parse_round_trips(self):
        for text in ("fixed", "fixed,jitter=0.5", "exponential,base=2,factor=3,cap=60",
                     "exponential,base=1.5,jitter=0.25"):
            policy = BackoffPolicy.parse(text)
            again = BackoffPolicy.parse(policy.to_string())
            assert again == policy

    @pytest.mark.parametrize("bad", [
        "bogus", "fixed,nope=1", "fixed,jitter=1.5", "exponential,factor=0.5",
        "fixed,base=-1", "exponential,cap=0",
    ])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            BackoffPolicy.parse(bad)

    def test_fixed_no_jitter_makes_no_rng_call(self):
        rng = child_rng(0, "x")
        before = rng.bit_generator.state
        policy = BackoffPolicy.parse("fixed", default_base=7.0)
        assert policy.delay(rng) == 7.0
        assert rng.bit_generator.state == before

    def test_default_jitter_matches_legacy_scalar_draw(self):
        # The orchestrator's historical jitter: latency * uniform(0.5, 1.5).
        policy = BackoffPolicy.parse("fixed,jitter=0.5", default_base=3.0)
        a, b = child_rng(5, "routing"), child_rng(5, "routing")
        for _ in range(100):
            assert policy.delay(a) == 3.0 * float(b.uniform(0.5, 1.5))

    def test_default_block_matches_legacy_fleet_draw(self):
        # The fleet's historical wakes: backoff_s * (0.5 + random(n)).
        policy = BackoffPolicy.parse("fixed,jitter=0.5", default_base=900.0)
        a, b = child_rng(9, "fleet"), child_rng(9, "fleet")
        got = policy.delay_block(64, a)
        want = 900.0 * (0.5 + b.random(64))
        np.testing.assert_array_equal(got, want)

    def test_exponential_growth_and_cap(self):
        policy = BackoffPolicy.parse("exponential,base=2,factor=2,cap=10")
        rng = child_rng(0, "x")
        assert [policy.delay(rng, attempt=a) for a in range(4)] == [2.0, 4.0, 8.0, 10.0]


class TestRetryPolicy:
    def test_parse_forms(self):
        assert RetryPolicy.parse("always").max_attempts is None
        assert RetryPolicy.parse("never").max_attempts == 0
        limited = RetryPolicy.parse("max=3,exponential,base=1,cap=30")
        assert limited.max_attempts == 3
        assert limited.backoff.kind == "exponential"
        assert RetryPolicy.parse(limited.to_string()) == limited

    def test_should_retry_and_delay(self):
        policy = RetryPolicy.parse("max=2,fixed,base=5")
        assert policy.should_retry(1) and policy.should_retry(2)
        assert not policy.should_retry(3)
        assert RetryPolicy.parse("always").should_retry(10_000)
        assert policy.retry_delay(1, child_rng(0, "x")) == 5.0
        assert RetryPolicy.parse("never").retry_delay(1, child_rng(0, "x")) == 0.0


# ---------------------------------------------------------------------------
# FaultSpec / FaultEvent
# ---------------------------------------------------------------------------


class TestFaultSpec:
    def test_round_trip_through_json(self):
        spec = FaultSpec(
            events=(
                FaultEvent("dropout_storm", 100.0, {"fraction": 0.3}),
                FaultEvent("aggregator_crash", 50.0,
                           {"node": 0, "recover_after_s": 10.0}),
            ),
            seed=4,
        )
        again = FaultSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec

    def test_events_serialize_flat(self):
        doc = FaultEvent("network_loss", 10.0,
                         {"rate": 0.2, "duration_s": 60.0}).to_dict()
        assert doc == {"kind": "network_loss", "at_s": 10.0,
                       "rate": 0.2, "duration_s": 60.0}

    @pytest.mark.parametrize("event_kwargs, field_part", [
        (dict(kind="nope", at_s=0.0), "kind"),
        (dict(kind="dropout_storm", at_s=-1.0, params={"fraction": 0.5}), "at_s"),
        (dict(kind="dropout_storm", at_s=0.0, params={}), "fraction"),
        (dict(kind="dropout_storm", at_s=0.0,
              params={"fraction": 0.5, "bogus": 1}), "bogus"),
        (dict(kind="network_loss", at_s=0.0,
              params={"rate": 1.5, "duration_s": 10.0}), "rate"),
    ])
    def test_field_named_errors(self, event_kwargs, field_part):
        with pytest.raises(SpecError) as err:
            FaultEvent(**event_kwargs)
        assert field_part in err.value.field

    def test_cross_validation_against_scenario(self):
        with pytest.raises(SpecError, match="faults.events"):
            small_spec(faults=FaultSpec(events=(
                FaultEvent("aggregator_crash", 10.0, {"node": 9}),)))
        with pytest.raises(SpecError, match="no task"):
            small_spec(faults=FaultSpec(events=(
                FaultEvent("worker_kill", 10.0, {"task": "ghost", "shard": 0}),)),
                plane=PlaneSpec(name="sharded", num_shards=2, executor="process"))
        with pytest.raises(SpecError, match="worker_kill"):
            small_spec(faults=FaultSpec(events=(
                FaultEvent("worker_kill", 10.0, {"task": "train", "shard": 0}),)))

    def test_faults_key_omitted_when_default(self):
        doc = small_spec().to_dict()
        assert "faults" not in doc
        # ... so pre-PR canonical documents still parse and fingerprint.
        assert ScenarioSpec.from_dict(doc) == small_spec()

    def test_override_supports_fault_seed_only(self):
        spec = small_spec().override("faults.seed", 7)
        assert spec.faults.seed == 7
        with pytest.raises(SpecError, match="faults.seed"):
            small_spec().override("faults.events", [])

    def test_validate_fault_params_defaults(self):
        filled = validate_fault_params("dropout_storm", {"fraction": 0.5},
                                       fill_defaults=True)
        assert filled["interval_s"] == 60.0
        with pytest.raises(FaultParamError):
            validate_fault_params("no_such_kind", {})

    def test_event_end_covers_every_kind(self):
        valid = {
            "aggregator_crash": {"node": 0, "recover_after_s": 30.0},
            "aggregator_flap": {"node": 0, "count": 2, "down_s": 10.0, "up_s": 20.0},
            "coordinator_outage": {"duration_s": 60.0},
            "dropout_storm": {"fraction": 0.5, "duration_s": 120.0},
            "straggler_tier": {"factor": 2.0, "fraction": 0.5, "duration_s": 60.0},
            "network_delay": {"factor": 2.0, "duration_s": 60.0},
            "network_loss": {"rate": 0.5, "duration_s": 60.0},
            "blackout": {"fraction": 0.5, "duration_s": 60.0},
            "availability_wave": {"amplitude": 0.5, "period_s": 60.0,
                                  "duration_s": 120.0},
            "flash_crowd": {"burst": 5, "duration_s": 60.0},
            "worker_kill": {"task": "t", "shard": 0},
        }
        assert set(valid) == set(FAULT_KINDS)
        for kind, params in valid.items():
            assert event_end_s(kind, 100.0, params) >= 100.0


# ---------------------------------------------------------------------------
# Differential contracts (the default path is byte-identical)
# ---------------------------------------------------------------------------


class TestDifferentialContracts:
    def test_no_faults_builds_no_injector(self):
        dep = Deployment.from_spec(small_spec())
        dep.run()
        assert dep.simulation.fault_injector is None

    def test_explicit_default_policies_are_bit_identical(self):
        base = Deployment.from_spec(small_spec()).run()
        explicit = Deployment.from_spec(small_spec().with_overrides({
            "system.selection_backoff": "fixed,jitter=0.5",
            "system.checkin_backoff": "fixed",
            "system.placement_retry": "always",
        })).run()
        assert trace_fingerprint(explicit) == trace_fingerprint(base)

    def test_same_schedule_replays_bit_identically(self):
        faults = FaultSpec(events=(
            FaultEvent("dropout_storm", 300.0,
                       {"fraction": 0.4, "duration_s": 120.0}),
            FaultEvent("network_loss", 500.0,
                       {"rate": 0.3, "duration_s": 120.0}),
        ))
        first = Deployment.from_spec(small_spec(faults=faults)).run()
        second = Deployment.from_spec(small_spec(faults=faults)).run()
        assert trace_fingerprint(first) == trace_fingerprint(second)

    def test_fault_seed_decouples_realization_from_workload(self):
        faults = FaultSpec(events=(
            FaultEvent("dropout_storm", 300.0,
                       {"fraction": 0.4, "duration_s": 300.0}),))
        pinned = FaultSpec(events=faults.events, seed=123)
        a = Deployment.from_spec(small_spec(faults=faults)).run()
        b = Deployment.from_spec(small_spec(faults=pinned)).run()
        assert trace_fingerprint(a) != trace_fingerprint(b)


# ---------------------------------------------------------------------------
# Recovery invariants over the canned scenario library
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "path", SCENARIO_FILES, ids=[p.stem for p in SCENARIO_FILES]
)
def test_recovery_invariants_hold_for_canned_spec(path):
    assert SCENARIO_FILES, "examples/scenarios/ must hold the canned specs"
    spec = ScenarioSpec.from_dict(json.loads(path.read_text()))
    dep = Deployment.from_spec(spec)
    result = dep.run()
    try:
        injector = dep.simulation.fault_injector
        assert injector is not None and injector.fired, "schedule never fired"
        report = recovery_report(dep.simulation, result)
        assert report["device_conservation_ok"], report
        assert report["updates_conservation_ok"], report
        for name, task_report in report["tasks"].items():
            assert task_report["unaccounted"] == 0, (name, task_report)
        # The run must keep making progress after the last fault window.
        end = injector.last_fault_end_s
        assert any(s.time >= end for s in result.trace.server_steps), (
            f"no server step after the fault window closed at {end}"
        )
    finally:
        for rt in dep.simulation.task_runtimes.values():
            close = getattr(rt, "close", None)
            if close is not None:
                close()


# ---------------------------------------------------------------------------
# Fault behaviours through the sim
# ---------------------------------------------------------------------------


class TestFaultBehaviours:
    def test_blackout_blocks_checkins(self):
        faults = FaultSpec(events=(
            FaultEvent("blackout", 200.0, {"fraction": 0.9, "duration_s": 400.0}),))
        dep = Deployment.from_spec(small_spec(faults=faults))
        dep.run()
        assert dep.simulation.fault_injector.checkins_blocked > 0

    def test_network_loss_drops_uploads_conservatively(self):
        faults = FaultSpec(events=(
            FaultEvent("network_loss", 200.0, {"rate": 0.5, "duration_s": 400.0}),))
        dep = Deployment.from_spec(small_spec(faults=faults))
        result = dep.run()
        injector = dep.simulation.fault_injector
        assert injector.uploads_lost > 0
        assert len(list(result.log.of_kind("upload_lost"))) == injector.uploads_lost
        report = recovery_report(dep.simulation, result)
        assert report["updates_conservation_ok"]

    def test_straggler_tier_slows_a_stable_subset(self):
        faults = FaultSpec(events=(
            FaultEvent("straggler_tier", 100.0,
                       {"factor": 5.0, "fraction": 0.5, "duration_s": 900.0}),))
        slow = Deployment.from_spec(small_spec(faults=faults)).run()
        fast = Deployment.from_spec(small_spec()).run()
        assert slow.stats("train").aggregated < fast.stats("train").aggregated

    def test_worker_kill_falls_back_bit_identically(self):
        plane = PlaneSpec(name="sharded", num_shards=2, executor="process")
        faults = FaultSpec(events=(
            FaultEvent("worker_kill", 400.0, {"task": "train", "shard": 1}),))
        dep = Deployment.from_spec(small_spec(faults=faults, plane=plane))
        try:
            killed = dep.run()
            fallbacks = list(killed.log.of_kind("executor_fallback"))
            assert fallbacks and fallbacks[0].detail["reason"] == "worker_dead"
        finally:
            for rt in dep.simulation.task_runtimes.values():
                rt.close()
        # The dispatch-log replay makes the degraded run byte-identical
        # to the inline executor with no faults at all.
        inline = Deployment.from_spec(
            small_spec(plane=PlaneSpec(name="sharded", num_shards=2))
        ).run()
        assert trace_fingerprint(killed) == trace_fingerprint(inline)


# ---------------------------------------------------------------------------
# Deprecated shims and coordinator structured events
# ---------------------------------------------------------------------------


class TestShimsAndEvents:
    def test_inject_shims_route_through_fault_injector(self):
        dep = Deployment.from_spec(small_spec())
        fedsim = dep.build()
        fedsim.inject_aggregator_failure(at_time=300.0, node_id=0)
        fedsim.inject_coordinator_outage(at_time=600.0, duration_s=60.0)
        injector = fedsim.fault_injector
        assert injector is not None
        result = fedsim.run(t_end=1200.0)
        assert {"aggregator_crash", "coordinator_outage"} <= {
            k for _, k in injector.fired
        }
        assert recovery_report(fedsim, result)["device_conservation_ok"]

    def test_task_failover_event_is_structured(self):
        faults = FaultSpec(events=(
            FaultEvent("aggregator_crash", 300.0,
                       {"node": 0, "recover_after_s": 200.0}),))
        result = Deployment.from_spec(small_spec(faults=faults)).run()
        events = list(result.log.of_kind("task_failover"))
        assert events
        detail = events[0].detail
        assert detail["task"] == "train" and detail["node"] == 0
        assert detail["reason"] in ("heartbeat_expired", "node_dead")
        assert detail["retries"] == 0

    def test_shard_replaced_event_is_structured(self):
        plane = PlaneSpec(name="sharded", num_shards=2)
        faults = FaultSpec(events=(
            FaultEvent("aggregator_crash", 300.0,
                       {"node": 0, "recover_after_s": 200.0}),))
        result = Deployment.from_spec(small_spec(faults=faults, plane=plane)).run()
        events = list(result.log.of_kind("shard_replaced"))
        assert events
        detail = events[0].detail
        assert detail["task"] == "train"
        assert detail["shard"] in (0, 1) and "node" in detail
        assert detail["reason"] in ("node_dead", "heartbeat_expired", "retry")
        assert detail["retries"] >= 0

    def test_placement_retry_then_abandoned(self):
        # Crash both aggregators with no recovery: placement has no live
        # node, so a max=2 policy retries twice and then gives up loudly.
        faults = FaultSpec(events=(
            FaultEvent("aggregator_crash", 200.0, {"node": 0}),
            FaultEvent("aggregator_crash", 200.0, {"node": 1}),
        ))
        spec = small_spec(faults=faults, t_end_s=900.0).override(
            "system.placement_retry", "max=2,fixed,base=30"
        )
        result = Deployment.from_spec(spec).run()
        retries = list(result.log.of_kind("placement_retry"))
        abandoned = list(result.log.of_kind("placement_abandoned"))
        assert retries and abandoned
        assert abandoned[0].detail["task"] == "train"
        assert abandoned[0].detail["retries"] > 2

    def test_fault_events_land_in_the_log(self):
        faults = FaultSpec(events=(
            FaultEvent("dropout_storm", 300.0,
                       {"fraction": 0.5, "duration_s": 120.0}),))
        result = Deployment.from_spec(small_spec(faults=faults)).run()
        assert list(result.log.of_kind("fault_dropout_storm"))


# ---------------------------------------------------------------------------
# The chaos experiment (tiny operating point; floors live in benchmarks/)
# ---------------------------------------------------------------------------


class TestChaosExperiment:
    def test_small_grid_measures_and_replays(self, capsys):
        from repro.harness.chaos import chaos_experiment, print_chaos

        res = chaos_experiment(
            n_devices=200, seed=0, t_end_s=2400.0,
            schedules="none,aggregator_crash", planes="single", replay=True,
        )
        assert [p.schedule for p in res.points] == ["none", "aggregator_crash"]
        baseline, crashed = res.points
        assert baseline.goodput_retention == 1.0
        assert baseline.recovery_s is None and baseline.replay_identical is None
        assert crashed.replay_identical is True
        assert crashed.device_conservation_ok and crashed.updates_conservation_ok
        assert crashed.unaccounted == 0
        print_chaos(res)
        assert "aggregator_crash" in capsys.readouterr().out

    def test_rejects_bad_parameters(self):
        from repro.harness.chaos import chaos_experiment

        with pytest.raises(SpecError, match="t_end_s"):
            chaos_experiment(t_end_s=100.0)
        with pytest.raises(SpecError, match="schedules"):
            chaos_experiment(schedules="nope")
        with pytest.raises(SpecError, match="planes"):
            chaos_experiment(planes="mesh")

    def test_registered_in_the_experiment_registry(self):
        from repro.harness import chaos, registry  # noqa: F401

        spec = registry.get("chaos")
        assert spec.result_type.__name__ == "ChaosResult"
        assert not spec.uses_scale


# ---------------------------------------------------------------------------
# SystemConfig policy validation
# ---------------------------------------------------------------------------


class TestSystemConfigPolicies:
    @pytest.mark.parametrize("field_name", [
        "selection_backoff", "checkin_backoff", "placement_retry",
    ])
    def test_bad_policy_strings_fail_at_spec_time(self, field_name):
        with pytest.raises(SpecError, match=field_name):
            small_spec().override(f"system.{field_name}", "bogus,nope=1")

    def test_policies_survive_spec_round_trip(self):
        spec = small_spec().with_overrides({
            "system.selection_backoff": "exponential,base=2,cap=120,jitter=0.1",
            "system.placement_retry": "max=5",
        })
        again = ScenarioSpec.from_dict(copy.deepcopy(spec.to_dict()))
        assert again == spec
