"""Tests for the batched million-client fleet driver.

Pins the tick-batched dynamics over the columnar population: counter
consistency, capacity (demand) enforcement, backoff of turned-away and
ineligible arrivals, lazy profile materialization being released after
session end, determinism, and re-entrant runs.
"""

import numpy as np
import pytest

from repro.sim import (
    BoundedMetricsTrace,
    ColumnarDevicePopulation,
    FleetConfig,
    FleetSimulation,
    MetricsTrace,
    Outcome,
    PopulationConfig,
)


def fleet(
    n_devices=400,
    seed=0,
    mean_sleep_s=600.0,
    demand=64,
    tick_s=60.0,
    eligibility_rate=0.8,
    dropout_rate=0.1,
    deep_trace_fraction=0.0,
    trace=None,
    **cfg_kwargs,
):
    pop = ColumnarDevicePopulation(
        PopulationConfig(
            n_devices=n_devices,
            eligibility_rate=eligibility_rate,
            dropout_rate=dropout_rate,
            # Short sessions so plenty complete inside short horizons.
            mean_examples=5.0,
            median_sec_per_example=0.05,
            max_examples=40,
        ),
        seed=seed,
    )
    config = FleetConfig(
        tick_s=tick_s,
        demand=demand,
        mean_sleep_s=mean_sleep_s,
        deep_trace_fraction=deep_trace_fraction,
        **cfg_kwargs,
    )
    return FleetSimulation(pop, config, trace=trace, seed=seed)


class TestFleetConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tick_s": 0.0},
            {"demand": -1},
            {"mean_sleep_s": 0.0},
            {"backoff_s": 0.0},
            {"epochs": 0},
            {"deep_trace_fraction": 1.5},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FleetConfig(**kwargs)


class TestDynamics:
    def test_counters_are_consistent(self):
        f = fleet()
        f.run(3600.0)
        assert f.sessions_started > 0
        assert f.sessions_completed + f.in_flight == f.sessions_started
        assert f.in_flight >= 0
        # Every completed session logged exactly one participation.
        assert f.trace.total_participations == f.sessions_completed
        counts = f.trace.outcome_counts()
        assert (
            counts[Outcome.AGGREGATED] + counts[Outcome.FAILED]
            == f.sessions_completed
        )

    def test_demand_caps_concurrency(self):
        f = fleet(demand=8, mean_sleep_s=120.0)
        f.run(3600.0)
        assert f.trace.peak_active <= 8
        assert f.turned_away > 0  # the cap actually bit

    def test_zero_demand_tick_admits_nobody(self):
        # Arrivals happen, everyone is turned away (or ineligible), and
        # the turned-away devices come back: the tick loop never stalls.
        f = fleet(demand=0)
        f.run(3600.0)
        assert f.sessions_started == 0
        assert f.in_flight == 0
        assert f.turned_away > 0
        assert f.trace.total_participations == 0

    def test_no_arrivals_before_horizon_is_a_quiet_run(self):
        # Mean sleep far beyond the horizon: with overwhelming
        # probability some tick buckets are empty, and often all of
        # them — the driver must tolerate ticks with no arrivals.
        f = fleet(n_devices=3, mean_sleep_s=1e9)
        end = f.run(600.0)
        assert end == 600.0
        assert f.sessions_started == 0
        assert f.trace.total_participations == 0

    def test_single_client_fleet(self):
        f = fleet(n_devices=1, mean_sleep_s=120.0, eligibility_rate=1.0)
        f.run(4 * 3600.0)
        assert f.sessions_completed > 0
        assert f.trace.peak_active == 1  # can never overlap itself
        recs = list(f.trace.participations)
        assert {r.device_id for r in recs} == {0}

    def test_ineligible_arrivals_backoff_and_retry(self):
        f = fleet(eligibility_rate=0.2, mean_sleep_s=300.0)
        f.run(3600.0)
        assert f.ineligible > 0
        # Backoff re-books them: far more check-in attempts than devices.
        attempts = f.sessions_started + f.ineligible + f.turned_away
        assert attempts > f.population.config.n_devices

    def test_availability_column_tracks_sessions(self):
        f = fleet(deep_trace_fraction=0.0)
        f.run(1800.0)
        # Devices in flight are marked unavailable, everyone else is back.
        assert int(np.sum(~f.population.available)) == f.in_flight


class TestLazyMaterialization:
    def test_profiles_released_after_session_end(self):
        f = fleet(deep_trace_fraction=1.0)
        f.run(3600.0)
        assert f.sessions_completed > 0
        # Only still-running sessions may hold a pinned profile.
        assert f.population.active_profiles == f.in_flight
        assert f.population.active_profiles == len(f._checked_out)

    def test_fully_drained_fleet_pins_nothing(self):
        f = fleet(deep_trace_fraction=1.0, demand=4)
        f.run(1800.0)
        # Let every in-flight session finish (no new ticks are booked
        # past the horizon, so the queue drains to completions only).
        f.sim.run_until_idle()
        assert f.in_flight == 0
        assert f.population.active_profiles == 0


class TestDeterminismAndResume:
    def test_same_seed_same_run(self):
        a, b = fleet(seed=3), fleet(seed=3)
        a.run(3600.0)
        b.run(3600.0)
        assert a.sessions_started == b.sessions_started
        assert a.sessions_completed == b.sessions_completed
        assert a.turned_away == b.turned_away
        assert a.ineligible == b.ineligible
        assert a.trace.to_dict() == b.trace.to_dict()

    def test_different_seed_differs(self):
        a, b = fleet(seed=0), fleet(seed=1)
        a.run(3600.0)
        b.run(3600.0)
        assert (
            a.sessions_started != b.sessions_started
            or a.trace.to_dict() != b.trace.to_dict()
        )

    def test_reentrant_run_resumes(self):
        f = fleet()
        f.run(1800.0)
        started_then = f.sessions_started
        completed_then = f.sessions_completed
        end = f.run(3600.0)
        assert end == 3600.0
        assert f.sessions_started >= started_then
        assert f.sessions_completed >= completed_then
        assert f.sessions_completed + f.in_flight == f.sessions_started

    def test_horizon_in_past_rejected(self):
        f = fleet()
        f.run(1200.0)
        with pytest.raises(ValueError):
            f.run(600.0)


class TestTraceWiring:
    def test_default_trace_is_bounded(self):
        assert isinstance(fleet().trace, BoundedMetricsTrace)

    def test_exact_trace_can_be_injected(self):
        f = fleet(trace=MetricsTrace())
        f.run(1800.0)
        assert isinstance(f.trace, MetricsTrace)
        assert len(f.trace.participations) == f.sessions_completed

    def test_bounded_trace_caps_records_but_counts_all(self):
        f = fleet(
            n_devices=800,
            mean_sleep_s=120.0,
            trace=BoundedMetricsTrace(max_records=25, seed=0),
        )
        f.run(3600.0)
        assert f.trace.total_participations == f.sessions_completed
        assert f.trace.total_participations > 25
        assert len(f.trace.participations) == 25


class TestDeviceConservation:
    """The device-leak regression suite (ISSUE 7 satellite).

    Every device is always in exactly one place: booked in an unfired
    wake bucket, or inside an in-flight session.  The old scheduler
    violated this when ``_backoff`` (or an end-of-session re-book)
    landed a wake inside the tick currently being processed — the
    bucket had already been popped, so the device fell out of the wake
    calendar forever.
    """

    @staticmethod
    def booked(f):
        return sum(len(b) for b in f._buckets.values())

    def test_conservation_at_every_tick_under_backoff_churn(self):
        # demand=0 turns every eligible arrival away, and a backoff
        # shorter than one tick books the retry into the *current*
        # tick — the exact leak scenario.
        f = fleet(n_devices=300, demand=0, backoff_s=20.0, tick_s=60.0,
                  mean_sleep_s=300.0)
        horizon = 0.0
        for _ in range(40):
            horizon += f.config.tick_s
            f.run(horizon)
            assert self.booked(f) + f.in_flight == 300, (
                f"device leak at t={horizon}: {self.booked(f)} booked + "
                f"{f.in_flight} in flight"
            )
        assert f.turned_away > 0  # the churn actually happened

    def test_conservation_with_ineligible_backoffs(self):
        f = fleet(n_devices=250, eligibility_rate=0.1, backoff_s=30.0,
                  tick_s=60.0, mean_sleep_s=400.0)
        for horizon in (600.0, 1800.0, 3600.0):
            f.run(horizon)
            assert self.booked(f) + f.in_flight == 250
        assert f.ineligible > 0

    def test_conservation_through_normal_session_churn(self):
        f = fleet(n_devices=400, mean_sleep_s=300.0)
        f.run(7200.0)
        assert self.booked(f) + f.in_flight == 400
        assert f.sessions_completed > 0

    def test_rebooking_into_current_tick_is_clamped(self):
        f = fleet(n_devices=10)
        f._next_tick = 5  # pretend ticks 0..4 already fired
        f._bucket_one(3, 130.0)  # tick 2 by timestamp — already popped
        assert 3 in f._buckets[5]
        ids = np.array([4, 5], dtype=np.int64)
        f._bucket_bulk(ids, np.array([10.0, 500.0]))
        assert 4 in f._buckets[5]  # clamped forward
        assert 5 in f._buckets[8]  # future wake unaffected


class TestTickIndexingOnResume:
    """Explicit tick indexing: resume never skips or re-fires a bucket."""

    def test_split_resume_matches_straight_run(self):
        # 150 and 210 are off the 60s tick grid: the old float-derived
        # index (banker's rounding of now/tick_s) skipped bucket 3 when
        # resuming at t=150.
        a = fleet(seed=7, mean_sleep_s=300.0)
        b = fleet(seed=7, mean_sleep_s=300.0)
        a.run(150.0)
        a.run(210.0)
        a.run(3600.0)
        b.run(3600.0)
        assert a.sessions_started == b.sessions_started
        assert a.sessions_completed == b.sessions_completed
        assert a.turned_away == b.turned_away
        assert a.ineligible == b.ineligible
        assert a.trace.to_dict() == b.trace.to_dict()

    def test_many_fractional_resumes_match_straight_run(self):
        a = fleet(seed=11, mean_sleep_s=200.0, n_devices=150)
        b = fleet(seed=11, mean_sleep_s=200.0, n_devices=150)
        t = 0.0
        while t < 1500.0:
            t += 95.0  # never a multiple of tick_s=60
            a.run(min(t, 1500.0))
        b.run(1500.0)
        assert a.sessions_started == b.sessions_started
        assert a.trace.to_dict() == b.trace.to_dict()

    def test_resume_after_idle_drain_catches_up(self):
        # Horizon far past the last booked wake: the tick chain dies
        # out (boundary > horizon), then a later run must restart it
        # at the *next unfired* boundary without scheduling in the past.
        f = fleet(n_devices=50, mean_sleep_s=100.0)
        f.run(400.0)
        f.run(40_000.0)
        f.run(41_000.0)
        assert f.sessions_started > 0
        assert (
            sum(len(b) for b in f._buckets.values()) + f.in_flight == 50
        )

    def test_max_events_stop_does_not_double_schedule_ticks(self):
        f = fleet(seed=2, mean_sleep_s=300.0)
        f.run(3600.0, max_events=5)  # stops mid-horizon, tick queued
        f.run(3600.0)  # must not start a second tick chain
        g = fleet(seed=2, mean_sleep_s=300.0)
        g.run(3600.0)
        assert f.sessions_started == g.sessions_started
        assert f.trace.to_dict() == g.trace.to_dict()
