"""Differential and trace-completeness tests for the observability plane.

Two contracts, pinned end-to-end:

* **read-only observer** — a telemetry-on run produces byte-identical
  participations, server steps, losses, and event order to a
  telemetry-off run of the same spec (the observer never draws
  randomness, schedules events, or mutates state);
* **trace completeness under chaos** — for every canned scenario in
  ``examples/scenarios/``, the exported span tree is causally complete:
  no orphaned spans, every admitted update's round-trip closed, and the
  schedule's fault windows annotated onto the spans they overlapped.
"""

import json
import pathlib

import pytest

from repro.api import (
    Deployment,
    ExecutionSpec,
    PlaneSpec,
    PopulationSpec,
    ScenarioSpec,
    TaskSpec,
    TelemetrySpec,
    build_population,
)
from repro.harness.obs import trace_scenario
from repro.obs import PHASE_CATALOG, SPAN_CATALOG, RunTelemetry, TelemetryReport
from repro.sim.fleet import FleetConfig, FleetSimulation
from repro.sim.trace import BoundedMetricsTrace

SCENARIOS = sorted(
    (pathlib.Path(__file__).parent.parent / "examples" / "scenarios").glob("*.json")
)


def _spec(plane: str, telemetry: bool) -> ScenarioSpec:
    return ScenarioSpec(
        population=PopulationSpec(n_devices=200),
        tasks=(
            TaskSpec(name="train", mode="async", concurrency=16,
                     aggregation_goal=4),
        ),
        plane=(
            PlaneSpec(name="sharded", num_shards=2)
            if plane == "sharded"
            else PlaneSpec()
        ),
        execution=ExecutionSpec(seed=7, t_end_s=900.0),
        telemetry=TelemetrySpec(enabled=telemetry),
    )


def _run_outputs(plane: str, telemetry: bool):
    result = Deployment.from_spec(_spec(plane, telemetry)).run()
    participations = [
        (p.device_id, p.task, p.start_time, p.end_time, p.outcome)
        for p in result.trace.participations
    ]
    steps = [
        (s.time, s.task, s.version, s.num_updates, s.loss)
        for s in result.trace.server_steps
    ]
    events = [r.to_dict() for r in result.log]
    return result, participations, steps, events


class TestReadOnlyObserver:
    @pytest.mark.parametrize("plane", ["single", "sharded"])
    def test_telemetry_does_not_perturb_the_run(self, plane):
        off, off_parts, off_steps, off_events = _run_outputs(plane, False)
        on, on_parts, on_steps, on_events = _run_outputs(plane, True)
        assert off.telemetry is None
        assert isinstance(on.telemetry, TelemetryReport)
        assert on_parts == off_parts
        assert on_steps == off_steps  # losses ride in the step tuples
        assert on_events == off_events  # same events, same order

    def test_fleet_observer_is_read_only(self):
        def run(observed: bool):
            population = build_population(
                PopulationSpec(n_devices=20_000, columnar=True, seed=3)
            )
            fleet = FleetSimulation(
                population,
                FleetConfig(demand=100),
                trace=BoundedMetricsTrace(max_records=5_000, seed=3),
                seed=3,
                observer=RunTelemetry() if observed else None,
            )
            fleet.run(900.0)
            return (
                [(p.device_id, p.start_time, p.end_time, p.outcome)
                 for p in fleet.trace.participations],
                fleet.sessions_started,
                fleet.sessions_completed,
                fleet.turned_away,
                fleet.ineligible,
                fleet.trace.total_participations,
                fleet.sim.events_fired,
                fleet.sim.now,
            )

        assert run(True) == run(False)


class TestExportedTelemetry:
    def test_report_surfaces_and_exports(self):
        result = Deployment.from_spec(_spec("sharded", True)).run()
        report = result.telemetry
        summary = report.summary()
        json.dumps(summary)  # JSON-able throughout
        assert summary["metrics"]["sessions_total"]["series"]
        assert set(summary["spans"]["totals"]) <= set(SPAN_CATALOG)
        assert set(summary["profile"]) <= set(PHASE_CATALOG)
        # The sharded core was actually profiled, not just attachable.
        assert summary["profile"]["shard_fold"]["count"] > 0
        assert summary["profile"]["root_merge"]["count"] > 0
        for line in report.to_jsonl().splitlines():
            doc = json.loads(line)
            assert doc["record"] in ("span", "event")
        assert "# TYPE sessions_total counter" in report.prometheus()


class TestTraceCompletenessUnderChaos:
    @pytest.mark.parametrize("path", SCENARIOS, ids=lambda p: p.stem)
    def test_span_tree_complete_and_faults_annotated(self, path):
        doc = json.loads(path.read_text())
        assert doc.get("faults", {}).get("events"), (
            f"{path.name}: canned scenario lost its fault schedule"
        )
        result, report = trace_scenario(doc)
        tracer = report.tracer

        # Telemetry was forced on and nothing was evicted or orphaned.
        assert isinstance(report, TelemetryReport)
        assert tracer.evicted == 0
        assert tracer.orphans() == []

        # Every admitted update's round trip is closed: each completed
        # admit span hangs off a *completed* round_trip parent.
        completed = {s.span_id for s in tracer.completed()}
        admits = tracer.completed_of("admit")
        assert admits, f"{path.name}: no updates admitted under the schedule"
        for span in admits:
            assert span.parent_id in completed, (
                f"{path.name}: admit span {span.span_id} closed but its "
                f"round_trip {span.parent_id} never did"
            )

        # Sessions and spans agree exactly: one completed round_trip per
        # terminal session outcome, with only in-flight sessions open.
        sessions = sum(
            report.metrics.get("sessions_total", labels).value
            for labels in report.metrics.snapshot()["sessions_total"]["series"]
        )
        assert tracer.count("round_trip") == sessions
        for span in tracer.open_spans():
            assert span.status == "in_flight"

        # The schedule's fault windows landed as span annotations, and
        # every annotation names a fault kind the run actually logged.
        fault_kinds = {
            kind for kind in result.log.kind_totals()
            if kind.startswith("fault_") or kind == "upload_lost"
        }
        assert fault_kinds, f"{path.name}: schedule fired no fault events"
        annotated = [
            note
            for span in tracer.completed()
            for note in (span.annotations or ())
        ]
        assert annotated, f"{path.name}: no span overlapped a fault window"
        for note in annotated:
            assert note["fault"] in fault_kinds
            assert note["at_s"] <= note["until_s"]
