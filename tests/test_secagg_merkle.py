"""Tests for the verifiable log (RFC 6962-style Merkle tree)."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.secagg import (
    VerifiableLog,
    leaf_hash,
    node_hash,
    verify_consistency,
    verify_inclusion,
)


def build_log(n):
    log = VerifiableLog()
    for i in range(n):
        log.append(f"binary-release-{i}".encode())
    return log


class TestRootComputation:
    def test_empty_root_is_hash_of_empty_string(self):
        assert VerifiableLog().root() == hashlib.sha256(b"").digest()

    def test_single_leaf_root(self):
        log = build_log(1)
        assert log.root() == leaf_hash(b"binary-release-0")

    def test_two_leaf_root(self):
        log = build_log(2)
        expected = node_hash(leaf_hash(b"binary-release-0"), leaf_hash(b"binary-release-1"))
        assert log.root() == expected

    def test_root_changes_on_append(self):
        log = build_log(3)
        before = log.root()
        log.append(b"binary-release-3")
        assert log.root() != before

    def test_prefix_roots_stable(self):
        # The root over the first k entries never changes as the log grows.
        log = build_log(5)
        r3 = log.root(3)
        log.append(b"more")
        assert log.root(3) == r3

    def test_entry_retrieval(self):
        log = build_log(4)
        assert log.entry(2) == b"binary-release-2"

    def test_root_size_validation(self):
        with pytest.raises(ValueError):
            build_log(2).root(5)


class TestInclusionProofs:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 7, 8, 9, 16, 33])
    def test_all_entries_verifiable(self, size):
        log = build_log(size)
        root = log.root()
        for i in range(size):
            proof = log.inclusion_proof(i)
            assert verify_inclusion(log.entry(i), i, size, proof, root), (i, size)

    def test_wrong_entry_rejected(self):
        log = build_log(8)
        proof = log.inclusion_proof(3)
        assert not verify_inclusion(b"not-the-entry", 3, 8, proof, log.root())

    def test_wrong_index_rejected(self):
        log = build_log(8)
        proof = log.inclusion_proof(3)
        assert not verify_inclusion(log.entry(3), 4, 8, proof, log.root())

    def test_wrong_root_rejected(self):
        log = build_log(8)
        proof = log.inclusion_proof(3)
        assert not verify_inclusion(log.entry(3), 3, 8, proof, b"\x00" * 32)

    def test_truncated_proof_rejected(self):
        log = build_log(8)
        proof = log.inclusion_proof(3)[:-1]
        assert not verify_inclusion(log.entry(3), 3, 8, proof, log.root())

    def test_proof_against_historical_snapshot(self):
        log = build_log(10)
        root5 = log.root(5)
        proof = log.inclusion_proof(2, size=5)
        assert verify_inclusion(log.entry(2), 2, 5, proof, root5)

    def test_out_of_range_rejected(self):
        log = build_log(4)
        with pytest.raises(ValueError):
            log.inclusion_proof(4)
        assert not verify_inclusion(b"x", 5, 4, [], log.root())

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 64))
    def test_inclusion_property(self, size):
        log = build_log(size)
        root = log.root()
        for i in {0, size // 2, size - 1}:
            proof = log.inclusion_proof(i)
            assert verify_inclusion(log.entry(i), i, size, proof, root)


class TestConsistencyProofs:
    @pytest.mark.parametrize(
        "old,new", [(1, 2), (2, 4), (3, 7), (4, 8), (5, 13), (8, 8), (1, 1), (7, 16)]
    )
    def test_honest_growth_verifies(self, old, new):
        log = build_log(new)
        proof = log.consistency_proof(old, new)
        assert verify_consistency(old, new, log.root(old), log.root(new), proof)

    def test_rewritten_history_rejected(self):
        log1 = build_log(8)
        old_root = log1.root(4)
        # A second log that shares no prefix.
        log2 = VerifiableLog()
        for i in range(8):
            log2.append(f"EVIL-{i}".encode())
        proof = log2.consistency_proof(4, 8)
        assert not verify_consistency(4, 8, old_root, log2.root(), proof)

    def test_equal_sizes_need_equal_roots(self):
        log = build_log(4)
        assert verify_consistency(4, 4, log.root(), log.root(), [])
        assert not verify_consistency(4, 4, b"\x01" * 32, log.root(), [])

    def test_shrinking_rejected(self):
        log = build_log(8)
        assert not verify_consistency(8, 4, log.root(8), log.root(4), [])

    def test_empty_old_tree_trivially_consistent(self):
        log = build_log(5)
        assert verify_consistency(0, 5, log.root(0), log.root(5), [])

    def test_truncated_proof_rejected(self):
        log = build_log(13)
        proof = log.consistency_proof(5, 13)
        if proof:
            assert not verify_consistency(5, 13, log.root(5), log.root(13), proof[:-1])

    def test_padded_proof_rejected(self):
        log = build_log(13)
        proof = log.consistency_proof(5, 13) + [b"\x00" * 32]
        assert not verify_consistency(5, 13, log.root(5), log.root(13), proof)

    def test_size_validation(self):
        log = build_log(4)
        with pytest.raises(ValueError):
            log.consistency_proof(5, 4)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 48), st.integers(0, 16))
    def test_consistency_property(self, old, extra):
        new = old + extra
        log = build_log(new)
        proof = log.consistency_proof(old, new)
        assert verify_consistency(old, new, log.root(old), log.root(new), proof)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 32), st.integers(1, 16))
    def test_tampered_midlog_rejected_property(self, old, extra):
        new = old + extra
        honest = build_log(new)
        # Tamper with one entry inside the old prefix, keep the rest.
        evil = VerifiableLog()
        for i in range(new):
            entry = honest.entry(i)
            evil.append(b"TAMPERED" if i == old // 2 else entry)
        proof = evil.consistency_proof(old, new)
        assert not verify_consistency(old, new, honest.root(old), evil.root(new), proof)
