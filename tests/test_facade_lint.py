"""The façade lint: no direct FederatedSimulation construction sneaks in.

``tools/check_facade.py`` (run by the CI lint job and here, in tier-1)
forbids ``FederatedSimulation(...)`` call sites outside
``repro/api/deployment.py`` and the allowlist — keeping
``Deployment.from_spec`` the single construction path.
"""

import importlib.util
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def check_facade():
    spec = importlib.util.spec_from_file_location(
        "check_facade", REPO_ROOT / "tools" / "check_facade.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_repo_is_clean(check_facade):
    violations = check_facade.find_violations(REPO_ROOT)
    assert violations == [], (
        "direct FederatedSimulation(...) construction outside repro.api; "
        "build through Deployment.from_spec instead: "
        + "; ".join(f"{f}:{n}" for f, n, _ in violations)
    )


def test_check_detects_a_violation(check_facade, tmp_path):
    (tmp_path / "tools").mkdir()
    (tmp_path / "tools" / "facade_allowlist.txt").write_text(
        "src/allowed.py\n# comment\n"
    )
    src = tmp_path / "src"
    src.mkdir()
    (src / "allowed.py").write_text("sim = FederatedSimulation(tasks, pop)\n")
    (src / "direct.py").write_text(
        "class FederatedSimulation(Base):\n"
        "    pass\n"
        "sim = FederatedSimulation(tasks, pop)\n"
    )
    violations = check_facade.find_violations(tmp_path)
    # The allowlisted file and the class definition pass; the call doesn't.
    assert [(f, n) for f, n, _ in violations] == [("src/direct.py", 3)]
    assert check_facade.main(tmp_path) == 1


def test_cli_entry_point_is_clean():
    import subprocess

    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_facade.py")],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
