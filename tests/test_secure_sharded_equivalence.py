"""Differential equivalence suite: secure sharded plane vs single secure plane.

The contract under test (see ``repro/system/secure_sharding.py``) is
**stronger** than the float plane's: group math mod 2^bits is exact
under machine wraparound, so for any shard count and either routing
policy the merged masked group sums, the released unmask, the decoded
model deltas, and the cumulative boundary-byte meters of
:class:`SecureShardedAggregator` are **exactly equal** (``==``, no
tolerance) to the single :class:`SecureBufferedAggregator` fed the same
arrivals; ``num_shards=1`` is bit-identical to the single plane both
ways; mid-run shard failure composed with epoch re-keying leaves the
plane matching a single secure aggregator fed only the surviving
arrivals; and the process executor reproduces the inline plane bit for
bit, falling back through the dispatch-log replay when a worker dies.
"""

import multiprocessing

import numpy as np
import pytest

from repro.core.sharding import HashShardRouting, merge_group_partials
from repro.core.types import TrainingResult
from repro.system.secure import SecureBufferedAggregator
from repro.system.secure_sharding import (
    ProcessSecureShardedAggregator,
    SecureShardedAggregator,
)

P = 48  # vector length: small keeps the per-arrival modexp cost down

START_METHODS = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]


class VecState:
    """Minimal model-state stand-in: apply() accumulates the avg delta."""

    def __init__(self, n=P):
        self.vec = np.zeros(n, dtype=np.float32)
        self.size = n

    def current(self):
        return self.vec.copy()

    def apply(self, avg, n):
        self.vec += avg


def make_result(rng, cid, version=0):
    return TrainingResult(
        client_id=cid,
        delta=(rng.standard_normal(P) * 0.1).astype(np.float32),
        num_examples=int(rng.integers(1, 50)),
        train_loss=float(rng.random()),
        initial_version=version,
    )


def step_tuples(agg):
    return [
        (s.version, s.num_updates, s.total_weight, s.mean_staleness,
         s.max_staleness, s.contributors)
        for s in agg.step_history
    ]


def meters(agg):
    return (agg.boundary_bytes_in_total, agg.boundary_bytes_out_total)


def drive_both(single, sharded, seed=0, n=17, waves=3):
    """Identical multi-wave arrival sequences through both planes.

    Clients register in waves (later waves carry real staleness) and
    upload in a shuffled order; the global version/updates_received
    counters that key each client's randomness stream advance in
    lockstep, so the masked vectors are bit-identical across planes.
    """
    rng = np.random.default_rng(seed)
    next_cid = 0
    for _ in range(waves):
        cids = list(range(next_cid, next_cid + n))
        next_cid += n
        for agg in (single, sharded):
            for cid in cids:
                agg.register_download(cid)
        assert single.version == sharded.version
        order = rng.permutation(len(cids))
        for idx in order:
            cid = cids[int(idx)]
            version = single._in_flight[cid]
            assert sharded._in_flight[cid] == version
            r = make_result(rng, cid, version=version)
            u1, s1 = single.receive_update(r)
            u2, s2 = sharded.receive_update(r)
            assert u1.weight == u2.weight
            assert u1.staleness == u2.staleness
            assert (s1 is None) == (s2 is None)


def assert_exactly_equivalent(single, sharded):
    """The full ``==`` contract: state, steps, and meters, no tolerance."""
    assert single.version == sharded.version
    assert single.updates_received == sharded.updates_received
    assert step_tuples(single) == step_tuples(sharded)
    assert np.array_equal(single.state.current(), sharded.state.current())
    assert meters(single) == meters(sharded)


class TestSecureShardedEquivalence:
    @pytest.mark.parametrize("num_shards", [2, 3, 5])
    @pytest.mark.parametrize("routing", ["hash", "load"])
    def test_matches_single_secure_plane_exactly(self, num_shards, routing):
        single = SecureBufferedAggregator(VecState(), 6, P, seed=3)
        sharded = SecureShardedAggregator(
            VecState(), 6, P, num_shards=num_shards, routing=routing, seed=3
        )
        drive_both(single, sharded, seed=num_shards)
        assert_exactly_equivalent(single, sharded)
        # The work really spread: more than one shard folded something.
        if num_shards > 1:
            assert sum(1 for load in sharded.shard_loads() if load > 0) > 1

    @pytest.mark.parametrize("routing", ["hash", "load"])
    def test_merged_masked_group_sum_equals_single_at_buffer_edge(
        self, routing
    ):
        """One arrival short of the goal, the shards' merged masked
        weighted group sum equals the single plane's — bit for bit,
        while still masked."""
        goal = 6
        single = SecureBufferedAggregator(VecState(), goal, P, seed=5)
        sharded = SecureShardedAggregator(
            VecState(), goal, P, num_shards=3, routing=routing, seed=5
        )
        rng = np.random.default_rng(7)
        for cid in range(goal - 1):
            single.register_download(cid)
            sharded.register_download(cid)
            r = make_result(rng, cid)
            single.receive_update(r)
            sharded.receive_update(r)
        assert len(single.step_history) == 0  # epoch still open

        ref, ref_w = single._epoch_server.masked_weighted_sum(
            single._epoch_weights
        )
        partials = []
        total_w = 0
        for sid, shard in enumerate(sharded._shards):
            if not shard.weights:
                continue
            masked, w = shard.server.masked_weighted_sum(shard.weights)
            partials.append((sid, masked))
            total_w += w
        merged = merge_group_partials(sharded.group, partials, P)
        assert total_w == ref_w
        assert np.array_equal(merged, ref)

        # The goal-th arrival closes the epoch; the unmasked decode and
        # the stashed root artifacts stay exactly consistent.
        single.register_download(goal)
        sharded.register_download(goal)
        r = make_result(rng, goal)
        single.receive_update(r)
        sharded.receive_update(r)
        assert_exactly_equivalent(single, sharded)
        # The stashed root artifacts re-decode to exactly the applied
        # delta: merged masked sum − released unmask → weighted sum →
        # weighted average (the state started at zeros and took 1 step).
        from repro.system.secure import WEIGHT_SCALE

        encoded = sharded.group.sub(
            sharded.last_merged_masked_sum, sharded.last_unmask
        )
        total_w = int(round(sharded.step_history[-1].total_weight * WEIGHT_SCALE))
        weighted = sharded.codec.decode_sum(
            encoded, max(total_w, 1), sharded.clip_value
        )
        avg = (weighted / float(total_w)).astype(np.float32)
        assert np.array_equal(avg, sharded.state.current())

    def test_single_shard_is_bit_identical_both_ways(self):
        single = SecureBufferedAggregator(VecState(), 5, P, seed=11)
        sharded = SecureShardedAggregator(
            VecState(), 5, P, num_shards=1, seed=11
        )
        drive_both(single, sharded, seed=11, n=13, waves=2)
        assert_exactly_equivalent(single, sharded)
        assert sharded.shard_loads() == [sharded.updates_received]

    @pytest.mark.parametrize("routing", ["hash", "load"])
    def test_block_path_matches_sequential_exactly(self, routing):
        rng = np.random.default_rng(13)
        results = [make_result(rng, cid) for cid in range(17)]
        seq = SecureShardedAggregator(
            VecState(), 5, P, num_shards=3, routing=routing, seed=7
        )
        blk = SecureShardedAggregator(
            VecState(), 5, P, num_shards=3, routing=routing, seed=7
        )
        single = SecureBufferedAggregator(VecState(), 5, P, seed=7)
        for agg in (seq, blk, single):
            for r in results:
                agg.register_download(r.client_id)
        for r in results:
            seq.receive_update(r)
        blk.receive_update_block(results)
        single.receive_update_block(results)
        assert_exactly_equivalent(single, blk)
        assert_exactly_equivalent(seq, blk)
        assert seq.shard_loads() == blk.shard_loads()

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            SecureShardedAggregator(VecState(), 4, P, num_shards=0)
        with pytest.raises(ValueError):
            SecureShardedAggregator(VecState(), 4, P, routing="nope")


class TestSecureShardFailover:
    @pytest.mark.parametrize("routing", ["hash", "load"])
    def test_mid_run_failure_matches_single_on_survivors(self, routing):
        """After a shard dies mid-epoch, the plane **exactly** matches a
        single secure aggregator fed only the surviving arrivals (the
        individual masked vectors differ — the survivors plane derives
        different mask seeds — but the masks cancel out of the group sum
        and every decoded bit agrees)."""
        rng = np.random.default_rng(21)
        sharded = SecureShardedAggregator(
            VecState(), 5, P, num_shards=3, routing=routing, seed=9
        )
        results = [make_result(rng, cid) for cid in range(24)]
        for r in results:
            sharded.register_download(r.client_id)
        for r in results[:12]:  # two full epochs + 2 buffered
            sharded.receive_update(r)
        lost, dropped_clients = sharded.drop_shard(1)
        assert lost > 0 or dropped_clients  # non-trivial failover
        for r in results[12:]:
            if r.client_id in dropped_clients:
                with pytest.raises(KeyError):
                    sharded.receive_update(r)
            else:
                sharded.receive_update(r)

        survivors = set(
            cid for step in sharded.step_history for cid in step.contributors
        ) | set(sharded._epoch_contributors)
        single = SecureBufferedAggregator(VecState(), 5, P, seed=9)
        for r in results:
            single.register_download(r.client_id)
        for r in results:
            if r.client_id in survivors:
                single.receive_update(r)

        assert single.version == sharded.version
        assert step_tuples(single) == step_tuples(sharded)
        assert np.array_equal(single.state.current(), sharded.state.current())
        assert sharded.shard_failovers == 1

    def test_dead_slice_reroutes_exactly_once_and_snaps_back(self):
        sharded = SecureShardedAggregator(
            VecState(), 100, P, num_shards=4, routing="hash", seed=1
        )
        probe = next(
            cid for cid in range(1000)
            if HashShardRouting().route(cid, sharded._shards) == 2
        )
        sharded.drop_shard(2)
        assert not sharded.shard_alive(2)
        assert sharded.live_shards() == [0, 1, 3]
        sharded.register_download(probe)
        assert sharded.shard_of(probe) == 3  # probed past the dead shard
        # The re-route landed exactly once: one in-flight slot total.
        assert sum(s.in_flight for s in sharded._shards) == 1
        sharded.client_failed(probe)
        assert sum(s.in_flight for s in sharded._shards) == 0

        sharded.revive_shard(2)
        assert sharded.shard_alive(2)
        sharded.register_download(probe)
        assert sharded.shard_of(probe) == 2  # slice snaps back on revive
        assert sharded.shard_failovers == 1

    def test_legpool_and_tsa_persist_across_epoch_rekeying(self):
        """Epoch re-keying (`begin_round`) reuses each shard's long-lived
        TSA, server, and LegPool: no new trusted party, no re-mint-from-
        zero — demand minting just continues on the same pool."""
        sharded = SecureShardedAggregator(
            VecState(), 4, P, num_shards=2, routing="hash", seed=2
        )
        idents = [
            (id(s.tsa), id(s.server), id(s.pool)) for s in sharded._shards
        ]
        rng = np.random.default_rng(3)
        for cid in range(12):  # three full epochs
            v0, _ = sharded.register_download(cid)
            sharded.receive_update(make_result(rng, cid, version=v0))
        assert sharded.epochs_completed == 3
        assert idents == [
            (id(s.tsa), id(s.server), id(s.pool)) for s in sharded._shards
        ]
        # Demand minting (block_size=1): lifetime legs == lifetime folds,
        # accumulated across re-keyed epochs on the same pools.
        for shard in sharded._shards:
            assert shard.pool.minted == shard.folds_total
        assert sum(s.pool.minted for s in sharded._shards) == 12

    def test_boundary_meters_conserve_across_failover_epoch(self):
        """Every byte that crossed a trust boundary lands in the plane's
        cumulative meters exactly once, even when a shard (with pre-drop
        traffic already metered) dies inside the epoch and its slice is
        excised."""
        sharded = SecureShardedAggregator(
            VecState(), 4, P, num_shards=3, routing="hash", seed=4
        )
        rng = np.random.default_rng(5)
        cid = 0
        # One clean epoch, then a partial epoch with traffic on several
        # shards, then a failover inside the epoch.
        def feed():
            nonlocal cid
            v0, _ = sharded.register_download(cid)
            sharded.receive_update(make_result(rng, cid, version=v0))
            cid += 1

        while sharded.epochs_completed < 1:
            feed()
        for _ in range(2):
            feed()
        sharded.drop_shard(1)
        while sharded.epochs_completed < 2:
            feed()
        # Immediately after a finalize the sweep is complete: the plane's
        # totals equal the sum of the long-lived TSAs' cumulative meters
        # (dead shard's pre-drop traffic included) plus the reducer's
        # released unmasks — nothing dropped, nothing double-counted.
        assert sharded.boundary_bytes_in_total == sum(
            s.tsa.boundary_bytes_in for s in sharded._shards
        )
        assert sharded.boundary_bytes_out_total == (
            sum(s.tsa.boundary_bytes_out for s in sharded._shards)
            + sharded._reducer.boundary_bytes_out
        )


class TestProcessSecureExecutor:
    """The executor contract: worker-process shards ≡ inline, bit for bit."""

    @staticmethod
    def _drive(agg, seed=7, n=23, kill_at=None):
        rng = np.random.default_rng(seed)
        for cid in range(n):
            v0, _ = agg.register_download(cid)
            if kill_at is not None and cid == kill_at:
                agg.kill_worker(1)
            agg.receive_update(make_result(rng, cid, version=v0))

    @pytest.mark.parametrize("start_method", START_METHODS)
    @pytest.mark.parametrize("num_shards", [1, 3])
    def test_bit_identical_to_inline(self, start_method, num_shards):
        inline = SecureShardedAggregator(
            VecState(), 5, P, num_shards=num_shards, seed=3
        )
        proc = ProcessSecureShardedAggregator(
            VecState(), 5, P, num_shards=num_shards, seed=3,
            start_method=start_method,
        )
        try:
            self._drive(inline)
            self._drive(proc)
            assert proc.pool_active and proc.executor_fallbacks == 0
            assert_exactly_equivalent(inline, proc)
            assert inline.shard_loads() == proc.shard_loads()
        finally:
            proc.close()

    def test_dead_worker_falls_back_bit_identically(self):
        events = []
        inline = SecureShardedAggregator(
            VecState(), 5, P, num_shards=4, seed=3
        )
        proc = ProcessSecureShardedAggregator(
            VecState(), 5, P, num_shards=4, seed=3,
            on_event=lambda kind, fields: events.append((kind, fields)),
        )
        try:
            self._drive(inline)
            self._drive(proc, kill_at=9)
            assert not proc.pool_active
            assert proc.executor_fallbacks == 1
            kinds = [k for k, _ in events]
            assert "executor_fallback" in kinds
            assert_exactly_equivalent(inline, proc)
        finally:
            proc.close()

    def test_drop_and_revive_match_inline_in_process_mode(self):
        inline = SecureShardedAggregator(
            VecState(), 5, P, num_shards=3, seed=3
        )
        proc = ProcessSecureShardedAggregator(
            VecState(), 5, P, num_shards=3, seed=3
        )
        try:
            dropped = []
            for agg in (inline, proc):
                rng = np.random.default_rng(19)
                for cid in range(8):
                    agg.register_download(cid)
                for cid in range(4):
                    agg.receive_update(make_result(rng, cid))
                dropped.append(agg.drop_shard(1))
                agg.revive_shard(1)
                for cid in range(4, 8):
                    if agg.shard_of(cid) is None:
                        continue
                    agg.receive_update(make_result(rng, cid))
            assert dropped[0] == dropped[1]  # same loss, same dropped clients
            assert proc.pool_active and proc.executor_fallbacks == 0
            assert_exactly_equivalent(inline, proc)
        finally:
            proc.close()


class TestSecureShardsExperimentMicro:
    """Micro-scale runs of the ``secure_shards`` ExperimentSpec."""

    @pytest.mark.parametrize("routing", ["hash", "load"])
    def test_micro_sweep_is_exact_everywhere(self, routing):
        from repro.harness.perf import secure_shards_speedup

        res = secure_shards_speedup(
            shard_counts=(1, 2), goals=(4,), vector_lengths=(64,),
            epochs=2, routing=routing, repeats=1, seed=3,
        )
        assert len(res.points) == 2
        for p in res.points:
            assert p.bit_identical
            assert p.boundary_match
            assert p.process_fallbacks == 0
            assert p.arrivals == 8
            assert p.single_s > 0 and p.sharded_path_s > 0 and p.process_s > 0
            assert p.load_skew >= 1.0
        assert {p.num_shards for p in res.points} == {1, 2}
        assert res.cpu_count >= 1

    def test_printer_renders(self, capsys):
        from repro.harness.perf import (
            print_secure_shards,
            secure_shards_speedup,
        )

        res = secure_shards_speedup(
            shard_counts=(2,), goals=(4,), vector_lengths=(64,),
            epochs=1, repeats=1,
        )
        print_secure_shards(res)
        out = capsys.readouterr().out
        assert "Secure sharded plane" in out
        assert "modeled x" in out and "measured x" in out
        assert "bit-identical" in out and "boundary ok" in out

    def test_registered_and_json_round_trips(self):
        from repro.harness import registry
        from repro.harness.perf import (
            SecureShardsResult,
            secure_shards_speedup,
        )

        spec = registry.get("secure_shards")
        assert spec.result_type is SecureShardsResult
        assert not spec.uses_scale
        res = secure_shards_speedup(
            shard_counts=(2,), goals=(4,), vector_lengths=(64,),
            epochs=1, repeats=1,
        )
        restored = spec.deserialize(spec.serialize(res))
        assert restored == res  # frozen dataclasses: exact field equality
