"""Differential suite: the vectorized secagg data plane is bit-identical.

Every block-path primitive and protocol flow is pinned to *exact*
equality with its scalar counterpart — no tolerances anywhere:

* ``expand_mask_block`` rows against per-seed ``expand_mask`` (plus
  stream-independence properties of the expansion itself);
* the fused group reductions (``sum_block`` / ``weighted_sum_block`` /
  ``add_into``) against sequential folds across group widths;
* 2-D fixed-point encode/decode against per-row scalar calls;
* the full Figure 16 protocol driven through ``submit_block`` +
  check-in-time DH completion against per-client ``submit`` calls —
  masked sums, weighted releases, decoded aggregates, and the TSA's
  boundary-byte meters;
* TSA round re-keying (``begin_round``) and the shared
  :class:`~repro.system.secure.LegPool`, including the secure system
  aggregator's cohort drain (``receive_update_block``).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FedSGD, GlobalModelState, TrainingResult
from repro.secagg import (
    PowerOfTwoGroup,
    ProtocolError,
    SecAggClient,
    SecAggServer,
    TrustedSecureAggregator,
    build_deployment,
    expand_mask,
    expand_mask_block,
    generate_seed,
    run_secure_aggregation,
)
from repro.secagg.fixedpoint import FixedPointCodec
from repro.secagg.threat import flip_sealed_ciphertext_bit
from repro.system import LegPool, SecureBufferedAggregator
from repro.utils import child_rng


def seeds_for(n, seed=0):
    rng = child_rng(seed, "dp-seeds")
    return [generate_seed(rng) for _ in range(n)]


# ---------------------------------------------------------------------------
# expand_mask_block: row-level bit-identity + stream independence
# ---------------------------------------------------------------------------

class TestExpandMaskBlock:
    @pytest.mark.parametrize("bits", [8, 16, 32, 33, 64])
    @pytest.mark.parametrize("length", [0, 1, 7, 1000])
    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_rows_bit_identical_to_scalar(self, bits, length, k):
        group = PowerOfTwoGroup(bits)
        seeds = seeds_for(k, seed=bits * 1000 + length)
        block = expand_mask_block(seeds, length, group)
        assert block.shape == (k, length) and block.dtype == group.dtype
        for i, seed in enumerate(seeds):
            assert np.array_equal(block[i], expand_mask(seed, length, group))

    def test_preallocated_out_view(self):
        group = PowerOfTwoGroup(64)
        buf = np.zeros((10, 40), dtype=np.uint64)
        seeds = seeds_for(3)
        out = expand_mask_block(seeds, 40, group, out=buf[4:7])
        assert out.base is buf
        for i, seed in enumerate(seeds):
            assert np.array_equal(buf[4 + i], expand_mask(seed, 40, group))
        assert not buf[:4].any() and not buf[7:].any()

    def test_bad_out_rejected(self):
        group = PowerOfTwoGroup(64)
        with pytest.raises(ValueError, match="out must be"):
            expand_mask_block(seeds_for(2), 8, group,
                              out=np.zeros((2, 9), dtype=np.uint64))
        with pytest.raises(ValueError, match="out must be"):
            expand_mask_block(seeds_for(2), 8, group,
                              out=np.zeros((2, 8), dtype=np.uint32))

    def test_bad_seed_rejected(self):
        group = PowerOfTwoGroup(32)
        with pytest.raises(ValueError, match="16 bytes"):
            expand_mask_block([b"short"], 8, group)
        with pytest.raises(ValueError, match="non-negative"):
            expand_mask_block(seeds_for(1), -1, group)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**63), st.integers(0, 2**63))
    def test_distinct_seeds_distinct_streams(self, a, b):
        """Stream independence: distinct seeds differ somewhere, at every
        length probed — the one-time pads of different clients must never
        collide."""
        if a == b:
            return
        group = PowerOfTwoGroup(64)
        sa, sb = a.to_bytes(16, "little"), b.to_bytes(16, "little")
        for length in (1, 5, 64):
            ma = expand_mask(sa, length, group)
            mb = expand_mask(sb, length, group)
            assert np.any(ma != mb), f"streams collided at length {length}"

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(0, 2**127), min_size=1, max_size=6, unique=True),
        st.sampled_from([0, 1, 3, 17, 257]),
        st.sampled_from([16, 32, 64]),
    )
    def test_block_rows_match_scalar_property(self, keys, length, bits):
        group = PowerOfTwoGroup(bits)
        seeds = [k.to_bytes(16, "little") for k in keys]
        block = expand_mask_block(seeds, length, group)
        for i, seed in enumerate(seeds):
            assert np.array_equal(block[i], expand_mask(seed, length, group))


# ---------------------------------------------------------------------------
# Fused group reductions
# ---------------------------------------------------------------------------

class TestGroupBlockOps:
    @pytest.mark.parametrize("bits", [8, 16, 31, 32, 33, 64])
    def test_sum_block_equals_sequential(self, bits):
        group = PowerOfTwoGroup(bits)
        rng = child_rng(bits, "gb")
        block = group.reduce(rng.integers(0, 2**63, size=(7, 50), dtype=np.uint64))
        seq = group.zeros(50)
        for row in block:
            seq = group.add(seq, row)
        assert np.array_equal(group.sum_block(block), seq)

    @pytest.mark.parametrize("bits", [8, 32, 33, 64])
    def test_weighted_sum_block_equals_sequential(self, bits):
        group = PowerOfTwoGroup(bits)
        rng = child_rng(bits, "gw")
        block = group.reduce(rng.integers(0, 2**63, size=(6, 40), dtype=np.uint64))
        # Include zero, large, and order-exceeding weights.
        weights = [0, 1, 3, group.order - 1, group.order + 5, 2**70]
        seq = group.zeros(40)
        for row, w in zip(block, weights):
            seq = group.add(seq, group.scale(row, w))
        assert np.array_equal(group.weighted_sum_block(block, weights), seq)

    def test_add_into_matches_add(self):
        group = PowerOfTwoGroup(33)
        rng = child_rng(0, "ai")
        a = group.reduce(rng.integers(0, 2**63, size=20, dtype=np.uint64))
        b = group.reduce(rng.integers(0, 2**63, size=20, dtype=np.uint64))
        expected = group.add(a, b)
        out = group.add_into(a, b)
        assert out is a and np.array_equal(a, expected)

    def test_sub_one_pass_matches_add_neg(self):
        group = PowerOfTwoGroup(33)
        rng = child_rng(0, "sb")
        a = group.reduce(rng.integers(0, 2**63, size=20, dtype=np.uint64))
        b = group.reduce(rng.integers(0, 2**63, size=20, dtype=np.uint64))
        assert np.array_equal(group.sub(a, b), group.add(a, group.neg(b)))

    def test_empty_block(self):
        group = PowerOfTwoGroup(32)
        empty = np.zeros((0, 9), dtype=group.dtype)
        assert np.array_equal(group.sum_block(empty), group.zeros(9))
        assert np.array_equal(group.weighted_sum_block(empty, []), group.zeros(9))

    def test_block_validation(self):
        group = PowerOfTwoGroup(32)
        with pytest.raises(ValueError, match="block"):
            group.sum_block(group.zeros(4))  # 1-D is not a block
        with pytest.raises(TypeError):
            group.sum_block(np.zeros((2, 3), dtype=np.uint64))
        with pytest.raises(ValueError, match="one weight per row"):
            group.weighted_sum_block(np.zeros((2, 3), dtype=group.dtype), [1])


# ---------------------------------------------------------------------------
# 2-D fixed point
# ---------------------------------------------------------------------------

class TestFixedPointBlock:
    @pytest.mark.parametrize("bits", [32, 64])
    def test_encode_block_rows_equal_scalar(self, bits):
        codec = FixedPointCodec(PowerOfTwoGroup(bits), scale=2**10, clip_value=2.0)
        rng = child_rng(bits, "fp")
        values = rng.uniform(-3, 3, size=(5, 17))
        block = codec.encode_block(values)
        for i in range(5):
            assert np.array_equal(block[i], codec.encode(values[i]))
        decoded = codec.decode(block)
        for i in range(5):
            assert np.array_equal(decoded[i], codec.decode(block[i]))

    def test_encode_block_requires_2d(self):
        codec = FixedPointCodec(PowerOfTwoGroup(32))
        with pytest.raises(ValueError, match="block"):
            codec.encode_block(np.zeros(4))

    def test_decode_fast_path_signed_values(self):
        # The 64-bit zero-copy view must reproduce the two's-complement
        # decoding of negative values exactly.
        codec = FixedPointCodec(PowerOfTwoGroup(64), scale=2**16)
        values = np.array([-1.5, -1 / 2**16, 0.0, 1 / 2**16, 2.75])
        assert np.array_equal(codec.decode(codec.encode(values)), values)


# ---------------------------------------------------------------------------
# Protocol-level differential: block vs scalar end to end
# ---------------------------------------------------------------------------

class TestProtocolEquivalence:
    @pytest.mark.parametrize("weighted", [False, True])
    @pytest.mark.parametrize("group_bits", [32, 64])
    def test_block_protocol_bit_identical(self, weighted, group_bits):
        rng = child_rng(0, "pe")
        updates = [rng.uniform(-1, 1, 200) for _ in range(6)]
        weights = [0, 1, 2, 3, 4, 5] if weighted else None
        agg_s, dep_s = run_secure_aggregation(
            updates, weights=weights, group_bits=group_bits, seed=9
        )
        agg_b, dep_b = run_secure_aggregation(
            updates, weights=weights, group_bits=group_bits, seed=9,
            block_submissions=True,
        )
        assert np.array_equal(agg_s, agg_b)
        # The incremental masked state the server holds must be identical
        # too, not just the final answer.
        for sub_s, sub_b in zip(
            dep_s.server.accepted_submissions, dep_b.server.accepted_submissions
        ):
            assert np.array_equal(sub_s.masked_update, sub_b.masked_update)
        # Boundary metering is part of the protocol contract (Figure 6).
        assert dep_s.tsa.boundary_bytes_in == dep_b.tsa.boundary_bytes_in
        assert dep_s.tsa.boundary_bytes_out == dep_b.tsa.boundary_bytes_out

    def test_weighted_release_without_mask_cache(self):
        # cache_masks=False: the weighted release re-expands seeds as one
        # batched expansion; the released vector must still be identical.
        def run(cache_masks):
            group = PowerOfTwoGroup(64)
            codec = FixedPointCodec(group, scale=2**16, clip_value=1.0)
            from repro.secagg.attestation import SigningAuthority

            authority = SigningAuthority()
            tsa = TrustedSecureAggregator(
                group, 64, threshold=2, authority=authority,
                rng=child_rng(4, "tsa"), cache_masks=cache_masks,
            )
            server = SecAggServer(tsa, codec, initial_legs=4)
            rng = child_rng(4, "u")
            subs = []
            for i in range(3):
                client = SecAggClient(
                    i, codec, authority, tsa.binary_hash, tsa.params_hash,
                    child_rng(4, "c", i),
                )
                subs.append(
                    client.participate(rng.uniform(-1, 1, 64), server.assign_leg())
                )
            flags = server.submit_block(subs)
            assert flags == [True, True, True]
            return server.finalize(weights={0: 2, 1: 0, 2: 5}, max_abs=1.0)

        assert np.array_equal(run(True), run(False))

    def test_block_rejections_match_scalar_semantics(self):
        dep = build_deployment(vector_length=8, threshold=1, seed=5)
        clients = [
            SecAggClient(i, dep.codec, dep.authority, dep.tsa.binary_hash,
                         dep.tsa.params_hash, child_rng(5, "c", i))
            for i in range(3)
        ]
        leg0, leg1 = dep.server.assign_leg(), dep.server.assign_leg()
        good = clients[0].participate(np.zeros(8), leg0)
        dup = clients[1].participate(np.zeros(8), leg0)  # same leg as good
        tampered = flip_sealed_ciphertext_bit(clients[2].participate(np.zeros(8), leg1))
        flags = dep.server.submit_block([good, dup, tampered])
        # First use of the leg wins, duplicate and tampered are rejected
        # exactly as K sequential submits would decide.
        assert flags == [True, False, False]
        assert dep.server.accepted_count == 1

    def test_scalar_submit_dtype_checked_before_tsa(self):
        # A wrong-dtype masked update must be rejected before the TSA
        # burns the leg — otherwise the mask sum would hold a mask whose
        # masked update never aggregated.
        dep = build_deployment(vector_length=8, threshold=1, seed=21)
        client = SecAggClient(0, dep.codec, dep.authority, dep.tsa.binary_hash,
                              dep.tsa.params_hash, child_rng(21, "c"))
        sub = client.participate(np.zeros(8), dep.server.assign_leg())
        from dataclasses import replace

        bad = replace(sub, masked_update=sub.masked_update.astype(np.uint64))
        with pytest.raises(TypeError, match="dtype"):
            dep.server.submit(bad)
        assert dep.tsa.processed_count == 0  # leg not consumed
        assert dep.server.submit(sub) is True

    def test_block_shape_validation_up_front(self):
        dep = build_deployment(vector_length=8, threshold=1, seed=6)
        client = SecAggClient(0, dep.codec, dep.authority, dep.tsa.binary_hash,
                              dep.tsa.params_hash, child_rng(6, "c"))
        sub = client.participate(np.zeros(8), dep.server.assign_leg())
        from dataclasses import replace

        bad = replace(sub, masked_update=sub.masked_update[:4])
        with pytest.raises(ValueError, match="wrong length"):
            dep.server.submit_block([bad])
        # Nothing was processed: the good submission still goes through.
        assert dep.server.submit_block([sub]) == [True]

    def test_complete_leg_amortizes_dh(self):
        dep = build_deployment(vector_length=8, threshold=1, seed=7)
        client = SecAggClient(0, dep.codec, dep.authority, dep.tsa.binary_hash,
                              dep.tsa.params_hash, child_rng(7, "c"))
        sub = client.participate(np.ones(8), dep.server.assign_leg())
        assert dep.tsa.complete_leg(sub.leg_index, sub.completing_message) is True
        # Second completing message for the same leg is refused.
        assert dep.tsa.complete_leg(sub.leg_index, sub.completing_message) is False
        # The submission is processed against the cached channel key; the
        # inline completing message is not needed again.
        assert dep.server.submit(sub) is True
        agg = dep.server.finalize()
        np.testing.assert_allclose(agg, np.ones(8), atol=1e-3)

    def test_complete_leg_boundary_total_matches_inline(self):
        def run(precomplete):
            dep = build_deployment(vector_length=8, threshold=1, seed=8)
            client = SecAggClient(0, dep.codec, dep.authority,
                                  dep.tsa.binary_hash, dep.tsa.params_hash,
                                  child_rng(8, "c"))
            sub = client.participate(np.zeros(8), dep.server.assign_leg())
            if precomplete:
                dep.server.complete_checkin(sub)
            dep.server.submit(sub)
            return dep.tsa.boundary_bytes_in

        assert run(True) == run(False)

    def test_complete_leg_rejects_unknown_and_used(self):
        dep = build_deployment(vector_length=4, threshold=1, seed=9)
        client = SecAggClient(0, dep.codec, dep.authority, dep.tsa.binary_hash,
                              dep.tsa.params_hash, child_rng(9, "c"))
        sub = client.participate(np.zeros(4), dep.server.assign_leg())
        assert dep.tsa.complete_leg(999, sub.completing_message) is False
        assert dep.tsa.complete_leg(sub.leg_index, 1) is False  # degenerate key
        dep.server.submit(sub)
        # Leg consumed: completion for it is refused from now on.
        assert dep.tsa.complete_leg(sub.leg_index, sub.completing_message) is False


# ---------------------------------------------------------------------------
# Rounds and the shared leg pool
# ---------------------------------------------------------------------------

class TestRoundsAndLegPool:
    def _deployment_parties(self, seed, vector_length=8, threshold=1):
        dep = build_deployment(vector_length=vector_length, threshold=threshold,
                               seed=seed)
        return dep

    def submit_one(self, dep, cid, value, leg=None):
        client = SecAggClient(cid, dep.codec, dep.authority, dep.tsa.binary_hash,
                              dep.tsa.params_hash, child_rng(77, "c", cid))
        sub = client.participate(value, leg or dep.server.assign_leg())
        assert dep.server.submit(sub) is True
        return sub

    def test_begin_round_rekeys_release(self):
        dep = self._deployment_parties(seed=10)
        self.submit_one(dep, 0, np.full(8, 0.5))
        first = dep.server.finalize()
        np.testing.assert_allclose(first, np.full(8, 0.5), atol=1e-3)
        with pytest.raises(ProtocolError):
            dep.tsa.release_unmask()
        # Re-key: a fresh round accepts new contributions and releases
        # exactly once again, without re-minting the leg supply.
        dep.tsa.begin_round()
        dep.server.begin_round()
        self.submit_one(dep, 1, np.full(8, 0.25))
        second = dep.server.finalize()
        np.testing.assert_allclose(second, np.full(8, 0.25), atol=1e-3)
        assert dep.tsa.round_index == 1

    def test_used_legs_stay_burned_across_rounds(self):
        dep = self._deployment_parties(seed=11)
        sub = self.submit_one(dep, 0, np.zeros(8))
        dep.server.finalize()
        dep.tsa.begin_round()
        dep.server.begin_round()
        # Replaying the old leg in the new round must be rejected.
        assert dep.server.submit(sub) is False

    def test_leg_pool_refills_in_blocks(self):
        dep = self._deployment_parties(seed=12)
        mints = []
        original = dep.tsa.prepare_legs

        def counting(count):
            mints.append(count)
            return original(count)

        dep.tsa.prepare_legs = counting
        pool = LegPool(dep.tsa, block_size=4, prefill=2)
        assert pool.available == 2 and pool.minted == 2
        seen = {pool.take().index for _ in range(7)}
        assert len(seen) == 7
        assert mints == [2, 4, 4]  # prefill, then two block refills
        assert pool.minted == 10
        with pytest.raises(ValueError):
            LegPool(dep.tsa, block_size=0)

    def test_server_refill_size_defaults_to_initial(self):
        dep = self._deployment_parties(seed=13)
        mints = []
        original = dep.tsa.prepare_legs

        def counting(count):
            mints.append(count)
            return original(count)

        dep.tsa.prepare_legs = counting
        server = SecAggServer(dep.tsa, dep.codec, initial_legs=5)
        for _ in range(6):
            server.assign_leg()
        assert mints == [5, 5]  # refill matches the initial pool size
        custom = SecAggServer(dep.tsa, dep.codec, initial_legs=2, refill_size=7)
        for _ in range(3):
            custom.assign_leg()
        assert mints == [5, 5, 2, 7]
        with pytest.raises(ValueError):
            SecAggServer(dep.tsa, dep.codec, initial_legs=2, refill_size=0)


# ---------------------------------------------------------------------------
# Secure system aggregator: block drain vs sequential arrivals
# ---------------------------------------------------------------------------

def _result(cid, delta, n=1, version=0):
    return TrainingResult(
        client_id=cid, delta=np.asarray(delta, dtype=np.float32),
        num_examples=n, train_loss=1.0, initial_version=version,
    )


class TestSecureBlockDrain:
    def _agg(self, seed=0, goal=3, dim=6):
        return SecureBufferedAggregator(
            GlobalModelState(np.zeros(dim, dtype=np.float32), FedSGD(lr=1.0)),
            goal=goal, vector_length=dim, seed=seed,
        )

    def test_block_drain_matches_sequential(self):
        rng = np.random.default_rng(3)
        results = [
            _result(i, rng.uniform(-1, 1, 6), n=int(rng.integers(1, 20)))
            for i in range(8)
        ]
        seq, blk = self._agg(), self._agg()
        for agg in (seq, blk):
            for i in range(8):
                agg.register_download(i)
        seq_out = [seq.receive_update(r) for r in results]
        blk_out = blk.receive_update_block(results)
        assert np.array_equal(seq.state.current(), blk.state.current())
        assert seq.version == blk.version == 2
        assert seq.step_history == blk.step_history
        assert seq.boundary_bytes_in_total == blk.boundary_bytes_in_total
        assert seq.boundary_bytes_out_total == blk.boundary_bytes_out_total
        for (u_s, i_s), (u_b, i_b) in zip(seq_out, blk_out):
            assert u_s.weight == u_b.weight
            assert (i_s is None) == (i_b is None)
            if i_s is not None:
                assert i_s == i_b

    def test_block_drain_steps_mid_block(self):
        agg = self._agg(goal=2)
        for i in range(5):
            agg.register_download(i)
        out = agg.receive_update_block([_result(i, [0.1] * 6) for i in range(5)])
        infos = [info for _, info in out if info is not None]
        assert len(infos) == 2 and agg.version == 2
        assert agg.buffered_count == 1  # the odd one waits for the next epoch

    def test_block_drain_unknown_client_raises_after_partial_submit(self):
        agg = self._agg(goal=4)
        agg.register_download(0)
        with pytest.raises(KeyError):
            agg.receive_update_block([_result(0, [0.0] * 6), _result(99, [0.0] * 6)])
        # The valid first result was still recorded, like sequentially.
        assert agg.buffered_count == 1

    def test_block_drain_rolls_back_rejected_contribution(self, monkeypatch):
        # A TSA-rejected submission must not leave phantom bookkeeping
        # behind: the epoch's weights may only reference processed legs,
        # so the epoch can still finalize after the error.
        from repro.secagg.threat import flip_sealed_ciphertext_bit

        agg = self._agg(goal=4)
        for i in range(3):
            agg.register_download(i)
        server = agg._epoch_server
        original = server.submit_block

        def tampering(subs):
            subs = list(subs)
            subs[1] = flip_sealed_ciphertext_bit(subs[1])
            return original(subs)

        monkeypatch.setattr(server, "submit_block", tampering)
        with pytest.raises(RuntimeError, match="rejected"):
            agg.receive_update_block([_result(i, [0.1] * 6) for i in range(3)])
        monkeypatch.setattr(server, "submit_block", original)
        assert agg.buffered_count == 2
        assert agg._epoch_contributors == [0, 2]
        assert len(agg._epoch_weights) == 2
        # The surviving epoch state is consistent: reaching the goal
        # finalizes cleanly (weights reference only processed legs).
        for cid in (10, 11):
            agg.register_download(cid)
            _, info = agg.receive_update(_result(cid, [0.1] * 6))
        assert info is not None and agg.version == 1

    def test_epochs_share_tsa_and_pool(self):
        agg = self._agg(goal=2)
        tsa_before = agg._epoch_tsa
        pool_before = agg._leg_pool
        for i in range(4):
            agg.register_download(i)
        agg.receive_update_block([_result(i, [0.5] * 6) for i in range(4)])
        assert agg.epochs_completed == 2
        assert agg._epoch_tsa is tsa_before  # re-keyed, not re-stood-up
        assert agg._leg_pool is pool_before
        assert agg._epoch_tsa.round_index == 2
        assert agg.log.size == 1  # one manifest for the task's lifetime
