"""Property-based tests (hypothesis) on cross-module invariants.

These complement the per-module tests with randomized sequences of
operations, checking the invariants that the whole reproduction leans on:
aggregation bookkeeping, secure-vs-plain equivalence, event ordering, and
the fixed-point/OTP algebra under composition.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConstantStaleness,
    FedBuffAggregator,
    FedSGD,
    GlobalModelState,
    SyncRoundAggregator,
    TrainingResult,
)
from repro.secagg import (
    FixedPointCodec,
    PowerOfTwoGroup,
    expand_mask,
    otp_decrypt_sum,
    otp_encrypt,
)
from repro.sim import Simulator
from repro.utils import child_rng


def result(cid, delta, n=1, version=0):
    return TrainingResult(
        client_id=cid,
        delta=np.asarray(delta, dtype=np.float32),
        num_examples=n,
        train_loss=0.0,
        initial_version=version,
    )


class TestFedBuffInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        goal=st.integers(1, 8),
        deltas=st.lists(st.floats(-10, 10), min_size=1, max_size=40),
        examples=st.data(),
    )
    def test_bookkeeping_invariants(self, goal, deltas, examples):
        """Whatever arrives: version == steps, buffer < goal, counts add up."""
        state = GlobalModelState(np.zeros(1, np.float32), FedSGD(lr=1.0))
        agg = FedBuffAggregator(state, goal=goal)
        steps = 0
        for cid, d in enumerate(deltas):
            n = examples.draw(st.integers(1, 50))
            v, _ = agg.register_download(cid)
            _, info = agg.receive_update(result(cid, [d], n=n, version=v))
            if info is not None:
                steps += 1
                assert info.num_updates == goal
        assert agg.version == steps == len(deltas) // goal
        assert agg.buffered_count == len(deltas) % goal
        assert agg.buffered_count < goal
        assert agg.updates_received == len(deltas)
        assert agg.in_flight_count() == 0

    @settings(max_examples=30, deadline=None)
    @given(
        deltas=st.lists(st.floats(-5, 5), min_size=2, max_size=10),
        weights=st.data(),
    )
    def test_step_is_convex_combination(self, deltas, weights):
        """The applied average lies within [min, max] of the deltas."""
        ns = [weights.draw(st.integers(1, 100)) for _ in deltas]
        state = GlobalModelState(np.zeros(1, np.float32), FedSGD(lr=1.0))
        agg = FedBuffAggregator(state, goal=len(deltas),
                                staleness_policy=ConstantStaleness())
        for cid, (d, n) in enumerate(zip(deltas, ns)):
            agg.register_download(cid)
            agg.receive_update(result(cid, [d], n=n))
        out = float(state.current()[0])
        assert min(deltas) - 1e-5 <= out <= max(deltas) + 1e-5

    @settings(max_examples=30, deadline=None)
    @given(order=st.permutations(list(range(6))))
    def test_unweighted_step_order_invariant(self, order):
        """With constant staleness weights, arrival order cannot change
        the aggregate (same set of updates, same goal)."""
        deltas = [1.0, -2.0, 3.5, 0.25, -0.75, 2.0]

        def run(sequence):
            state = GlobalModelState(np.zeros(1, np.float32), FedSGD(lr=1.0))
            agg = FedBuffAggregator(state, goal=6,
                                    staleness_policy=ConstantStaleness(),
                                    example_weighting="none")
            for cid in sequence:
                agg.register_download(cid)
                agg.receive_update(result(cid, [deltas[cid]]))
            return float(state.current()[0])

        assert run(order) == pytest.approx(run(list(range(6))), rel=1e-6)


class TestSyncRoundInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        goal=st.integers(1, 6),
        n_clients=st.integers(1, 30),
    )
    def test_rounds_partition_contributors(self, goal, n_clients):
        state = GlobalModelState(np.zeros(1, np.float32), FedSGD(lr=1.0))
        agg = SyncRoundAggregator(state, goal=goal)
        seen: set[int] = set()
        for cid in range(n_clients):
            agg.register_download(cid)
            _, info = agg.receive_update(result(cid, [1.0]))
            if info is not None:
                # Contributors are unique and never repeat across rounds.
                assert len(set(info.contributors)) == goal
                assert not (set(info.contributors) & seen)
                seen |= set(info.contributors)
        assert agg.version == n_clients // goal


class TestSecureAlgebra:
    @settings(max_examples=25, deadline=None)
    @given(
        bits=st.sampled_from([16, 32, 64]),
        n_parties=st.integers(1, 8),
        length=st.integers(1, 32),
        seed=st.integers(0, 1000),
    )
    def test_otp_sum_always_recovers(self, bits, n_parties, length, seed):
        group = PowerOfTwoGroup(bits)
        rng = child_rng(seed, "prop-otp")
        values = [group.random(rng, length) for _ in range(n_parties)]
        seeds = [bytes(rng.integers(0, 256, 16, dtype=np.uint8)) for _ in range(n_parties)]
        cipher = group.sum([otp_encrypt(v, s, group) for v, s in zip(values, seeds)])
        np.testing.assert_array_equal(
            otp_decrypt_sum(cipher, seeds, group), group.sum(values)
        )

    @settings(max_examples=25, deadline=None)
    @given(
        values=st.lists(st.floats(-1, 1), min_size=1, max_size=12),
        weights=st.lists(st.integers(0, 20), min_size=1, max_size=12),
        seed=st.integers(0, 100),
    )
    def test_weighted_masked_aggregation_algebra(self, values, weights, seed):
        """Σ w·(enc(v)+m) − Σ w·m == enc(Σ w·v) for any weights."""
        k = min(len(values), len(weights))
        values, weights = values[:k], weights[:k]
        group = PowerOfTwoGroup(64)
        codec = FixedPointCodec(group, scale=2**16, clip_value=1.0)
        rng = child_rng(seed, "prop-weighted")
        masked_sum = group.zeros(1)
        mask_sum = group.zeros(1)
        expected = 0.0
        for v, w in zip(values, weights):
            s = bytes(rng.integers(0, 256, 16, dtype=np.uint8))
            enc = codec.encode(np.array([v]))
            m = expand_mask(s, 1, group)
            masked_sum = group.add(masked_sum, group.scale(group.add(enc, m), w))
            mask_sum = group.add(mask_sum, group.scale(m, w))
            expected += w * np.clip(v, -1, 1)
        decoded = codec.decode(group.sub(masked_sum, mask_sum))
        total_w = max(sum(weights), 1)
        assert decoded[0] == pytest.approx(expected, abs=total_w / 2**16 + 1e-9)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(-100, 100), min_size=1, max_size=16),
        st.integers(2, 30),
    )
    def test_fixedpoint_scaled_sums_exact_within_budget(self, values, copies):
        group = PowerOfTwoGroup(64)
        codec = FixedPointCodec(group, scale=2**12, clip_value=100.0)
        enc = codec.encode(np.array(values))
        acc = group.zeros(len(values))
        for _ in range(copies):
            acc = group.add(acc, enc)
        decoded = codec.decode_sum(acc, copies, max_abs=100.0)
        np.testing.assert_allclose(
            decoded, copies * np.clip(values, -100, 100), atol=copies / 2**12
        )


class TestEngineProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(0, 1000, allow_nan=False), min_size=1, max_size=40))
    def test_events_fire_in_nondecreasing_time(self, delays):
        sim = Simulator()
        fired: list[float] = []
        for d in delays:
            sim.schedule(d, lambda: fired.append(sim.now))
        sim.run_until_idle()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @settings(max_examples=20, deadline=None)
    @given(
        delays=st.lists(st.floats(0.1, 100), min_size=2, max_size=20),
        cancel_idx=st.data(),
    )
    def test_cancellation_removes_exactly_those_events(self, delays, cancel_idx):
        sim = Simulator()
        fired: list[int] = []
        handles = [
            sim.schedule(d, lambda i=i: fired.append(i)) for i, d in enumerate(delays)
        ]
        to_cancel = cancel_idx.draw(
            st.sets(st.integers(0, len(delays) - 1), max_size=len(delays))
        )
        for i in to_cancel:
            handles[i].cancel()
        sim.run_until_idle()
        assert set(fired) == set(range(len(delays))) - to_cancel
