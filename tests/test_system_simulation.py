"""Integration tests of the full simulated PAPAYA deployment."""

import numpy as np
import pytest

from repro.core import FedAdam, GlobalModelState, LocalTrainer, TaskConfig, TrainingMode
from repro.data import CorpusSpec, FederatedDataset, TopicMarkovCorpus
from repro.nn import LSTMLanguageModel, ModelConfig
from repro.sim import DevicePopulation, Outcome, PopulationConfig
from repro.system import (
    FederatedSimulation,
    RealTrainingAdapter,
    SurrogateAdapter,
    SystemConfig,
)

MODEL_BYTES = 500_000


def async_task(name="async", concurrency=60, goal=10, **kw):
    return TaskConfig(
        name=name, mode=TrainingMode.ASYNC, concurrency=concurrency,
        aggregation_goal=goal, model_size_bytes=MODEL_BYTES, **kw,
    )


def sync_task(name="sync", goal=40, over_selection=0.3, **kw):
    cohort = int(np.ceil(goal * (1 + over_selection)))
    return TaskConfig(
        name=name, mode=TrainingMode.SYNC, concurrency=cohort,
        aggregation_goal=goal, over_selection=over_selection,
        model_size_bytes=MODEL_BYTES, **kw,
    )


def make_sim(tasks, n_devices=4000, seed=0, system=None, pop_kw=None):
    pop = DevicePopulation(
        PopulationConfig(n_devices=n_devices, **(pop_kw or {})), seed=seed
    )
    return FederatedSimulation(tasks, pop, system=system, seed=seed)


class TestAsyncRun:
    @pytest.fixture(scope="class")
    def result(self):
        fs = make_sim([(async_task(), SurrogateAdapter(seed=0))])
        return fs.run(t_end=1800.0)

    def test_server_steps_happen(self, result):
        assert result.stats().server_steps > 20

    def test_loss_decreases(self, result):
        times, losses = result.trace.loss_curve("async")
        assert losses[-1] < losses[0]

    def test_some_dropouts_observed(self, result):
        s = result.stats()
        # ~10% dropout rate in the population must show up.
        assert s.failed > 0
        assert s.failed < 0.25 * s.aggregated

    def test_no_overselection_waste_in_async(self, result):
        assert result.stats().discarded == 0

    def test_staleness_positive_but_bounded(self, result):
        s = result.stats()
        assert 0.0 < s.mean_staleness <= 100.0

    def test_high_utilization(self, result):
        util = result.trace.mean_utilization(60, t_start=300.0, t_end=1800.0)
        assert util > 0.8  # paper: "close to 100%"

    def test_concurrency_never_exceeded(self, result):
        _, counts = result.trace.active_series()
        assert counts.max() <= 60

    def test_every_step_has_goal_updates(self, result):
        for s in result.trace.server_steps:
            assert s.num_updates == 10


class TestSyncRun:
    @pytest.fixture(scope="class")
    def result(self):
        fs = make_sim([(sync_task(), SurrogateAdapter(seed=0))])
        return fs.run(t_end=3600.0)

    def test_rounds_complete(self, result):
        assert result.stats().server_steps > 3

    def test_overselection_discards_stragglers(self, result):
        s = result.stats()
        assert s.discarded > 0
        # Roughly the over-selected 30% of each round gets discarded.
        frac = s.discarded / max(1, s.aggregated + s.discarded)
        assert 0.05 < frac < 0.45

    def test_sync_staleness_zero(self, result):
        assert result.stats().mean_staleness == 0.0

    def test_utilization_fluctuates_below_async_levels(self, result):
        util = result.trace.mean_utilization(52, t_start=300.0, t_end=3600.0)
        assert util < 0.8  # sawtooth: Figure 7

    def test_rounds_aggregate_exact_goal(self, result):
        for s in result.trace.server_steps:
            assert s.num_updates == 40

    def test_discarded_clients_biased_slow(self, result):
        # The over-selection victims should be slower than average — the
        # mechanism behind the paper's fairness analysis.
        parts = result.trace.participations
        agg = [p.execution_time for p in parts if p.outcome is Outcome.AGGREGATED]
        disc = [p.execution_time for p in parts if p.outcome is Outcome.DISCARDED]
        assert np.mean(disc) > np.mean(agg)


class TestReplacementAndDemand:
    def test_failed_clients_replaced(self):
        # With heavy dropout, the system must keep making progress.
        fs = make_sim(
            [(async_task(concurrency=30, goal=5), SurrogateAdapter(seed=0))],
            pop_kw={"dropout_rate": 0.4},
        )
        res = fs.run(t_end=1800.0)
        s = res.stats()
        assert s.failed > 50
        assert s.server_steps > 10  # progress despite churn

    def test_sync_mid_round_replacement(self):
        fs = make_sim(
            [(sync_task(goal=20, over_selection=0.0), SurrogateAdapter(seed=0))],
            pop_kw={"dropout_rate": 0.3},
        )
        res = fs.run(t_end=3600.0)
        # Without over-selection and with 30% dropout, rounds can only
        # complete if failed clients are replaced mid-round.
        assert res.stats().server_steps >= 3
        assert res.stats().failed > 0

    def test_async_goal_reachability_with_small_concurrency(self):
        fs = make_sim([(async_task(concurrency=10, goal=10), SurrogateAdapter(seed=0))])
        res = fs.run(t_end=3600.0)
        assert res.stats().server_steps >= 1


class TestStalenessControl:
    def test_max_staleness_aborts(self):
        # Tiny max staleness with a big spread of execution times forces
        # aborts of slow clients after server steps.
        fs = make_sim(
            [(async_task(concurrency=50, goal=5, max_staleness=1),
              SurrogateAdapter(seed=0))],
        )
        res = fs.run(t_end=1800.0)
        s = res.stats()
        assert s.aborted > 0
        # No aggregated update may exceed the bound by more than one step
        # (abort happens right after the step that tripped it).
        stals = res.trace.staleness_values()
        assert stals.max() <= 2

    def test_generous_staleness_no_aborts(self):
        fs = make_sim(
            [(async_task(concurrency=40, goal=5, max_staleness=1000),
              SurrogateAdapter(seed=0))],
        )
        res = fs.run(t_end=900.0)
        assert res.stats().aborted == 0


class TestFailureRecovery:
    def test_aggregator_failure_recovers(self):
        fs = make_sim(
            [(async_task(), SurrogateAdapter(seed=0))],
            system=SystemConfig(n_aggregators=2, heartbeat_interval_s=5.0),
        )
        fs.inject_aggregator_failure(at_time=600.0, node_id=0)
        res = fs.run(t_end=2400.0)
        # The task moved and kept stepping after the failure.
        assert len(res.log.of_kind("task_reassigned")) >= 1
        post = [s for s in res.trace.server_steps if s.time > 700.0]
        assert len(post) > 5

    def test_aggregator_failure_drops_inflight(self):
        fs = make_sim(
            [(async_task(), SurrogateAdapter(seed=0))],
            system=SystemConfig(n_aggregators=2, heartbeat_interval_s=5.0),
        )
        fs.inject_aggregator_failure(at_time=600.0, node_id=0)
        res = fs.run(t_end=1800.0)
        assert res.stats().aborted > 0  # the failed node's sessions died

    def test_coordinator_outage_pauses_assignments_only(self):
        fs = make_sim([(async_task(), SurrogateAdapter(seed=0))])
        fs.inject_coordinator_outage(at_time=600.0, duration_s=120.0)
        res = fs.run(t_end=2400.0)
        # Steps continue throughout (participating clients unaffected)...
        during = [s for s in res.trace.server_steps if 600.0 < s.time < 720.0]
        assert len(during) > 0
        # ...and after recovery the system refills and keeps going.
        after = [s for s in res.trace.server_steps if s.time > 800.0]
        assert len(after) > 5

    def test_rejections_counted_during_outage(self):
        fs = make_sim([(async_task(), SurrogateAdapter(seed=0))])
        fs.inject_coordinator_outage(at_time=300.0, duration_s=300.0)
        fs.run(t_end=1200.0)
        assert fs.coordinator.assignments_rejected > 0


class TestMultiTenancy:
    def test_two_tasks_share_population(self):
        fs = make_sim(
            [
                (async_task(name="a", concurrency=30, goal=5), SurrogateAdapter(seed=1)),
                (async_task(name="b", concurrency=30, goal=5), SurrogateAdapter(seed=2)),
            ]
        )
        res = fs.run(t_end=1800.0)
        assert res.task_stats["a"].server_steps > 10
        assert res.task_stats["b"].server_steps > 10

    def test_device_never_concurrently_in_two_tasks(self):
        fs = make_sim(
            [
                (async_task(name="a", concurrency=25, goal=5), SurrogateAdapter(seed=1)),
                (async_task(name="b", concurrency=25, goal=5), SurrogateAdapter(seed=2)),
            ],
            n_devices=200,  # tight population forces contention
        )
        res = fs.run(t_end=900.0)
        # Reconstruct concurrent activity per device from participations.
        intervals: dict[int, list[tuple[float, float]]] = {}
        for p in res.trace.participations:
            intervals.setdefault(p.device_id, []).append((p.start_time, p.end_time))
        for spans in intervals.values():
            spans.sort()
            for (s1, e1), (s2, _) in zip(spans, spans[1:]):
                assert s2 >= e1 - 1e-9

    def test_mixed_mode_tenancy_sync_and_async_coexist(self):
        # A sync task and an async task sharing one deployment and one
        # population — the multi-tenancy PAPAYA actually runs.
        fs = make_sim(
            [
                (async_task(name="async", concurrency=30, goal=5),
                 SurrogateAdapter(seed=1)),
                (sync_task(name="sync", goal=20, over_selection=0.3),
                 SurrogateAdapter(seed=2)),
            ]
        )
        res = fs.run(t_end=2400.0)
        assert res.task_stats["async"].server_steps > 10
        assert res.task_stats["sync"].server_steps >= 2
        # Each preserves its own mode's signature behaviour.
        assert res.task_stats["async"].mean_staleness > 0
        assert res.task_stats["sync"].mean_staleness == 0.0
        assert res.task_stats["sync"].discarded > 0
        assert res.task_stats["async"].discarded == 0

    def test_duplicate_task_names_rejected(self):
        pop = DevicePopulation(PopulationConfig(n_devices=100), seed=0)
        with pytest.raises(ValueError):
            FederatedSimulation(
                [
                    (async_task(name="x"), SurrogateAdapter()),
                    (async_task(name="x"), SurrogateAdapter()),
                ],
                pop,
            )

    def test_empty_tasks_rejected(self):
        pop = DevicePopulation(PopulationConfig(n_devices=100), seed=0)
        with pytest.raises(ValueError):
            FederatedSimulation([], pop)


class TestParticipationHistory:
    def test_cooldown_spreads_participation(self):
        # With a tight population, a re-participation cooldown must lower
        # the maximum number of times any single device is drafted.
        def max_participations(cooldown):
            fs = make_sim(
                [(async_task(concurrency=20, goal=5), SurrogateAdapter(seed=0))],
                n_devices=60,
                system=SystemConfig(min_reparticipation_interval_s=cooldown),
            )
            res = fs.run(t_end=1800.0)
            counts = {}
            for p in res.trace.participations:
                counts[p.device_id] = counts.get(p.device_id, 0) + 1
            return max(counts.values()), len(res.trace.participations)

        hot_max, hot_total = max_participations(0.0)
        cool_max, cool_total = max_participations(300.0)
        assert cool_max < hot_max
        assert cool_total > 0

    def test_cooldown_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(min_reparticipation_interval_s=-1.0)


class TestStopConditions:
    def test_target_loss_stops_early(self):
        fs = make_sim([(async_task(), SurrogateAdapter(seed=0))])
        res = fs.run(t_end=36_000.0, target_loss=3.5)
        assert res.stats().final_loss <= 3.5
        assert res.duration_s < 36_000.0
        assert res.stats().time_to_target == pytest.approx(res.duration_s)

    def test_max_server_steps_stops(self):
        fs = make_sim([(async_task(), SurrogateAdapter(seed=0))])
        res = fs.run(t_end=36_000.0, max_server_steps=7)
        assert res.stats().server_steps == 7

    def test_stats_requires_task_when_ambiguous(self):
        fs = make_sim(
            [
                (async_task(name="a"), SurrogateAdapter(seed=1)),
                (async_task(name="b"), SurrogateAdapter(seed=2)),
            ]
        )
        res = fs.run(t_end=200.0)
        with pytest.raises(ValueError):
            res.stats()
        assert res.stats("a").name == "a"


class TestRealTrainingIntegration:
    def test_real_lstm_federated_run_improves_loss(self):
        model_cfg = ModelConfig(vocab_size=24, embed_dim=8, hidden_dim=12)
        corpus = TopicMarkovCorpus(CorpusSpec(vocab_size=24, seq_len=8), seed=3)
        dataset = FederatedDataset(corpus)
        model = LSTMLanguageModel(model_cfg, seed=0)
        state = GlobalModelState(model.get_flat(), FedAdam(lr=0.05))
        trainer = LocalTrainer(model_cfg, lr=0.5, batch_size=8, seed=0)
        pop = DevicePopulation(
            PopulationConfig(n_devices=300, mean_examples=20, max_examples=60),
            seed=3,
        )
        adapter = RealTrainingAdapter(
            trainer, dataset, state,
            eval_clients=[pop.profile(i).device_id for i in range(10)],
            eval_examples=[pop.profile(i).n_examples for i in range(10)],
        )
        cfg = TaskConfig(
            name="real", mode=TrainingMode.ASYNC, concurrency=16,
            aggregation_goal=4, model_size_bytes=100_000,
        )
        fs = FederatedSimulation([(cfg, adapter)], pop, seed=3)
        res = fs.run(t_end=3600.0, max_server_steps=10)
        times, losses = res.trace.loss_curve("real")
        assert len(losses) == 10
        assert losses[-1] < losses[0]
