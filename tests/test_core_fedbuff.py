"""Tests for FedBuff buffered asynchronous aggregation."""

import numpy as np
import pytest

from repro.core import (
    ConstantStaleness,
    FedBuffAggregator,
    FedSGD,
    GlobalModelState,
    HardCutoffStaleness,
    PolynomialStaleness,
    TrainingResult,
)


def make_state(dim=4):
    return GlobalModelState(np.zeros(dim, dtype=np.float32), FedSGD(lr=1.0))


def result(cid, delta, n=1, version=0):
    return TrainingResult(
        client_id=cid,
        delta=np.asarray(delta, dtype=np.float32),
        num_examples=n,
        train_loss=1.0,
        initial_version=version,
    )


class TestBuffering:
    def test_no_step_before_goal(self):
        agg = FedBuffAggregator(make_state(), goal=3)
        for cid in range(2):
            agg.register_download(cid)
            _, info = agg.receive_update(result(cid, [1, 0, 0, 0]))
            assert info is None
        assert agg.version == 0
        assert agg.buffered_count == 2

    def test_step_at_goal(self):
        agg = FedBuffAggregator(make_state(), goal=2)
        for cid in range(2):
            agg.register_download(cid)
            _, info = agg.receive_update(result(cid, [2, 0, 0, 0]))
        assert info is not None
        assert info.version == 1
        assert agg.version == 1
        assert agg.buffered_count == 0
        np.testing.assert_allclose(agg.state.current(), [2, 0, 0, 0])

    def test_weighted_mean_by_examples(self):
        # Client A: n=3, delta=1; client B: n=1, delta=5 -> mean=(3*1+1*5)/4=2
        agg = FedBuffAggregator(make_state(1), goal=2)
        agg.register_download(0)
        agg.register_download(1)
        agg.receive_update(result(0, [1.0], n=3))
        _, info = agg.receive_update(result(1, [5.0], n=1))
        assert info is not None
        np.testing.assert_allclose(agg.state.current(), [2.0])

    def test_multiple_steps(self):
        agg = FedBuffAggregator(make_state(1), goal=2)
        for step in range(3):
            for cid in (2 * step, 2 * step + 1):
                agg.register_download(cid)
                agg.receive_update(result(cid, [1.0], version=step))
        assert agg.version == 3
        assert len(agg.step_history) == 3
        assert agg.updates_received == 6

    def test_unregistered_client_rejected(self):
        agg = FedBuffAggregator(make_state(), goal=2)
        with pytest.raises(KeyError):
            agg.receive_update(result(9, [0, 0, 0, 0]))

    def test_version_mismatch_rejected(self):
        agg = FedBuffAggregator(make_state(), goal=2)
        agg.register_download(0)
        with pytest.raises(ValueError, match="initial version"):
            agg.receive_update(result(0, [0, 0, 0, 0], version=5))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            FedBuffAggregator(make_state(), goal=0)
        with pytest.raises(ValueError):
            FedBuffAggregator(make_state(), goal=1, example_weighting="bogus")
        with pytest.raises(ValueError):
            FedBuffAggregator(make_state(), goal=1, normalize_by="bogus")


class TestStalenessHandling:
    def test_staleness_recorded(self):
        agg = FedBuffAggregator(make_state(1), goal=1)
        # Client 0 downloads at v0; two other clients advance the model twice.
        agg.register_download(0)
        for cid in (1, 2):
            agg.register_download(cid)
            agg.receive_update(result(cid, [0.0], version=agg.version))
        assert agg.version == 2
        upd, info = agg.receive_update(result(0, [1.0], version=0))
        assert upd.staleness == 2
        assert info.mean_staleness == 2.0

    def test_stale_update_downweighted(self):
        # One fresh (n=1, delta=0) and one stale update (n=1, delta=3, s=3):
        # weights 1 and 1/2 -> weighted mean = 3*(0.5)/1.5 = 1.
        agg = FedBuffAggregator(make_state(1), goal=2,
                                staleness_policy=PolynomialStaleness(0.5))
        agg.register_download(0)  # will become stale
        for v in range(3):
            agg2_cid = 10 + v
            agg.register_download(agg2_cid)
            # goal=2 needs pairs; use a second aggregator-free trick: bump
            # version by feeding pairs of zero updates.
            agg.register_download(100 + v)
            agg.receive_update(result(agg2_cid, [0.0], version=v))
            agg.receive_update(result(100 + v, [0.0], version=v))
        assert agg.version == 3
        agg.register_download(1)
        agg.receive_update(result(1, [0.0], version=3))  # fresh, weight 1
        upd, info = agg.receive_update(result(0, [3.0], version=0))  # stale s=3
        assert upd.weight == pytest.approx(0.5)
        np.testing.assert_allclose(agg.state.current(), [1.0], rtol=1e-6)

    def test_stale_clients_reported(self):
        agg = FedBuffAggregator(make_state(1), goal=1, max_staleness=2)
        agg.register_download(0)
        for v in range(4):
            cid = 10 + v
            agg.register_download(cid)
            agg.receive_update(result(cid, [0.0], version=v))
        assert agg.version == 4  # client 0 staleness now 4 > 2
        assert agg.stale_clients() == [0]

    def test_client_failed_removes_in_flight(self):
        agg = FedBuffAggregator(make_state(), goal=2)
        agg.register_download(0)
        assert agg.in_flight_count() == 1
        agg.client_failed(0)
        assert agg.in_flight_count() == 0
        with pytest.raises(KeyError):
            agg.receive_update(result(0, [0, 0, 0, 0]))

    def test_hard_cutoff_zero_weight_buffer_still_steps(self):
        agg = FedBuffAggregator(make_state(1), goal=1,
                                staleness_policy=HardCutoffStaleness(cutoff=0),
                                normalize_by="weight_sum")
        # Make client 0 stale by 1 before it reports.
        agg.register_download(0)
        agg.register_download(1)
        agg.receive_update(result(1, [0.0], version=0))
        assert agg.version == 1
        _, info = agg.receive_update(result(0, [9.0], version=0))
        assert info is not None and agg.version == 2
        np.testing.assert_allclose(agg.state.current(), [0.0])


class TestNormalizationModes:
    def test_goal_normalization_divides_by_k(self):
        agg = FedBuffAggregator(make_state(1), goal=4, example_weighting="none",
                                normalize_by="goal",
                                staleness_policy=ConstantStaleness())
        for cid in range(4):
            agg.register_download(cid)
            agg.receive_update(result(cid, [2.0]))
        np.testing.assert_allclose(agg.state.current(), [2.0])

    def test_log_example_weighting(self):
        agg = FedBuffAggregator(make_state(1), goal=2, example_weighting="log")
        agg.register_download(0)
        agg.register_download(1)
        upd0, _ = agg.receive_update(result(0, [1.0], n=10))
        upd1, _ = agg.receive_update(result(1, [1.0], n=10))
        assert upd0.weight == pytest.approx(np.log1p(10))

    def test_none_example_weighting(self):
        agg = FedBuffAggregator(make_state(1), goal=1, example_weighting="none")
        agg.register_download(0)
        upd, _ = agg.receive_update(result(0, [1.0], n=1000))
        assert upd.weight == 1.0


class TestStepHistory:
    def test_contributors_recorded(self):
        agg = FedBuffAggregator(make_state(1), goal=2)
        agg.register_download(5)
        agg.register_download(7)
        agg.receive_update(result(5, [0.0]))
        _, info = agg.receive_update(result(7, [0.0]))
        assert info.contributors == (5, 7)
        assert info.discarded == ()
        assert info.num_updates == 2
