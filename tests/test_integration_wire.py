"""Cross-module integration: a real update over the simulated wire.

Covers the full Section 6.1 stage-4 path end to end: a client trains a
real LSTM, its delta is serialized, chunked for upload, reassembled,
deserialized, and aggregated — byte-identical; and a corrupted chunk is
caught by the CRC.
"""

import numpy as np
import pytest

from repro.core import FedBuffAggregator, FedSGD, GlobalModelState, LocalTrainer
from repro.data import CorpusSpec, FederatedDataset, TopicMarkovCorpus
from repro.nn import LSTMLanguageModel, ModelConfig
from repro.utils import (
    SerializationError,
    chunk_payload,
    deserialize_vector,
    reassemble_chunks,
    serialize_vector,
)


@pytest.fixture(scope="module")
def trained_delta():
    cfg = ModelConfig(vocab_size=16, embed_dim=6, hidden_dim=8)
    corpus = TopicMarkovCorpus(CorpusSpec(vocab_size=16, seq_len=8), seed=0)
    fd = FederatedDataset(corpus)
    trainer = LocalTrainer(cfg, lr=0.5, batch_size=8, seed=0)
    model = LSTMLanguageModel(cfg, seed=1)
    ds = fd.client_dataset(3, 20)
    result = trainer.train(model.get_flat(), ds, initial_version=0)
    return model, result


class TestWireRoundTrip:
    def test_delta_survives_chunked_upload(self, trained_delta):
        _, result = trained_delta
        blob = serialize_vector(result.delta)
        chunks = chunk_payload(blob, 512)
        assert len(chunks) > 1  # the model is bigger than one chunk
        received = deserialize_vector(reassemble_chunks(chunks))
        np.testing.assert_array_equal(received, result.delta)

    def test_received_delta_aggregates_identically(self, trained_delta):
        model, result = trained_delta
        blob = serialize_vector(result.delta)
        received = deserialize_vector(
            reassemble_chunks(chunk_payload(blob, 1024))
        )

        def aggregate(delta):
            state = GlobalModelState(model.get_flat(), FedSGD(lr=1.0))
            agg = FedBuffAggregator(state, goal=1)
            agg.register_download(result.client_id)
            from dataclasses import replace

            agg.receive_update(replace(result, delta=delta))
            return state.current()

        np.testing.assert_array_equal(aggregate(result.delta), aggregate(received))

    def test_corrupted_chunk_detected(self, trained_delta):
        _, result = trained_delta
        blob = serialize_vector(result.delta)
        chunks = chunk_payload(blob, 512)
        bad = bytearray(chunks[1])
        bad[10] ^= 0xFF
        chunks[1] = bytes(bad)
        with pytest.raises(SerializationError):
            deserialize_vector(reassemble_chunks(chunks))

    def test_dropped_chunk_detected(self, trained_delta):
        _, result = trained_delta
        blob = serialize_vector(result.delta)
        chunks = chunk_payload(blob, 512)
        with pytest.raises(SerializationError):
            deserialize_vector(reassemble_chunks(chunks[:-1]))
