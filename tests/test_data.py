"""Tests for the synthetic federated corpus."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    BOS_ID,
    CorpusSpec,
    FederatedDataset,
    TopicMarkovCorpus,
    Vocabulary,
)
from repro.utils import child_rng


@pytest.fixture(scope="module")
def corpus():
    return TopicMarkovCorpus(CorpusSpec(vocab_size=32, n_topics=3, seq_len=10), seed=42)


class TestVocabulary:
    def test_bos_spelling(self):
        assert Vocabulary(10).word(BOS_ID) == "<s>"

    def test_words_unique(self):
        v = Vocabulary(300)
        words = [v.word(i) for i in range(300)]
        assert len(set(words)) == 300

    def test_words_stable(self):
        assert Vocabulary(50).word(17) == Vocabulary(50).word(17)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary(10).word(10)

    def test_decode_joins(self):
        v = Vocabulary(10)
        assert v.decode([0, 1]) == f"<s> {v.word(1)}"

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary(1)


class TestCorpusStructure:
    def test_unigram_is_distribution(self, corpus):
        assert corpus.unigram[BOS_ID] == 0.0
        assert corpus.unigram.sum() == pytest.approx(1.0)
        # Zipf: earlier ranks more probable.
        assert corpus.unigram[1] > corpus.unigram[10] > corpus.unigram[31]

    def test_kernels_row_stochastic(self, corpus):
        sums = corpus.kernels.sum(axis=2)
        np.testing.assert_allclose(sums, 1.0, rtol=1e-9)

    def test_no_transition_into_bos(self, corpus):
        assert np.all(corpus.kernels[:, :, BOS_ID] == 0.0)

    def test_client_mixture_is_distribution(self, corpus):
        mix = corpus.client_topic_mixture(123)
        assert mix.shape == (3,)
        assert mix.sum() == pytest.approx(1.0)
        assert np.all(mix >= 0)

    def test_client_mixture_deterministic(self, corpus):
        np.testing.assert_array_equal(
            corpus.client_topic_mixture(9), corpus.client_topic_mixture(9)
        )

    def test_clients_are_non_iid(self, corpus):
        m1 = corpus.client_transition_matrix(1)
        m2 = corpus.client_transition_matrix(2)
        assert np.abs(m1 - m2).max() > 1e-3

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            CorpusSpec(vocab_size=2)
        with pytest.raises(ValueError):
            CorpusSpec(seq_len=1)
        with pytest.raises(ValueError):
            CorpusSpec(n_topics=0)
        with pytest.raises(ValueError):
            CorpusSpec(topic_concentration=0.0)
        with pytest.raises(ValueError):
            CorpusSpec(volume_topic_coupling=1.5)
        with pytest.raises(ValueError):
            CorpusSpec(reference_examples=0.0)


class TestVolumeTopicCoupling:
    @pytest.fixture(scope="class")
    def coupled(self):
        return TopicMarkovCorpus(
            CorpusSpec(vocab_size=32, n_topics=3, seq_len=8,
                       volume_topic_coupling=0.9, reference_examples=20.0),
            seed=5,
        )

    def test_heavy_clients_lean_topic_zero(self, coupled):
        light = coupled.client_topic_mixture(1, n_examples=2)
        heavy = coupled.client_topic_mixture(1, n_examples=500)
        assert heavy[0] > light[0]
        assert heavy[0] > 0.5  # strong coupling dominates at high volume

    def test_mixture_still_normalized(self, coupled):
        mix = coupled.client_topic_mixture(3, n_examples=100)
        assert mix.sum() == pytest.approx(1.0)
        assert np.all(mix >= 0)

    def test_no_volume_hint_uncoupled(self, coupled):
        base = coupled.client_topic_mixture(7)
        again = coupled.client_topic_mixture(7, n_examples=None)
        np.testing.assert_array_equal(base, again)

    def test_zero_coupling_ignores_volume(self, corpus):
        a = corpus.client_topic_mixture(2, n_examples=1)
        b = corpus.client_topic_mixture(2, n_examples=1000)
        np.testing.assert_array_equal(a, b)

    def test_heavy_clients_share_distribution(self, coupled):
        # Two different heavy clients become topically similar — the
        # "prolific users look alike" structure behind Table 1.
        m1 = coupled.client_transition_matrix(10, n_examples=500)
        m2 = coupled.client_transition_matrix(11, n_examples=500)
        l1 = coupled.client_transition_matrix(10, n_examples=2)
        l2 = coupled.client_transition_matrix(11, n_examples=2)
        assert np.abs(m1 - m2).mean() < np.abs(l1 - l2).mean()


class TestSequenceGeneration:
    def test_shapes_and_shift(self, corpus):
        x, y = corpus.generate_sequences(5, 20)
        assert x.shape == (20, 10) and y.shape == (20, 10)
        np.testing.assert_array_equal(x[:, 1:], y[:, :-1])
        assert np.all(x[:, 0] == BOS_ID)

    def test_tokens_in_range(self, corpus):
        x, y = corpus.generate_sequences(5, 50)
        assert x.min() >= 0 and x.max() < 32
        assert y.min() > 0  # BOS never generated mid-sequence

    def test_deterministic_per_client(self, corpus):
        x1, _ = corpus.generate_sequences(5, 10)
        x2, _ = corpus.generate_sequences(5, 10)
        np.testing.assert_array_equal(x1, x2)

    def test_clients_get_different_data(self, corpus):
        x1, _ = corpus.generate_sequences(1, 10)
        x2, _ = corpus.generate_sequences(2, 10)
        assert not np.array_equal(x1, x2)

    def test_zero_sequences_rejected(self, corpus):
        with pytest.raises(ValueError):
            corpus.generate_sequences(1, 0)

    def test_empirical_unigram_tracks_zipf(self, corpus):
        # Pool many clients: the aggregate unigram should correlate strongly
        # with the corpus-level Zipf law.
        counts = np.zeros(32)
        for cid in range(30):
            _, y = corpus.generate_sequences(cid, 30)
            counts += np.bincount(y.reshape(-1), minlength=32)
        emp = counts / counts.sum()
        corr = np.corrcoef(emp[1:], corpus.unigram[1:])[0, 1]
        assert corr > 0.8

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 30))
    def test_generation_valid_for_any_client(self, client_id, n):
        corpus = TopicMarkovCorpus(CorpusSpec(vocab_size=16, seq_len=4), seed=1)
        x, y = corpus.generate_sequences(client_id, n)
        assert x.shape == (n, 4)
        assert y.min() >= 1 and y.max() < 16


class TestFederatedDataset:
    def test_split_sizes(self, corpus):
        fd = FederatedDataset(corpus, val_fraction=0.1, test_fraction=0.2)
        ds = fd.client_dataset(3, 100)
        assert ds.num_train_examples == 70
        assert ds.val_x.shape[0] == 10
        assert ds.test_x.shape[0] == 20

    def test_minimum_one_training_example(self, corpus):
        fd = FederatedDataset(corpus, val_fraction=0.4, test_fraction=0.4)
        ds = fd.client_dataset(3, 1)
        assert ds.num_train_examples >= 1

    def test_cache_returns_same_object(self, corpus):
        fd = FederatedDataset(corpus)
        assert fd.client_dataset(1, 10) is fd.client_dataset(1, 10)
        fd.clear_cache()
        assert fd.client_dataset(1, 10) is not None

    def test_splits_disjoint_cover_data(self, corpus):
        fd = FederatedDataset(corpus, val_fraction=0.25, test_fraction=0.25)
        ds = fd.client_dataset(8, 40)
        total = ds.num_train_examples + ds.val_x.shape[0] + ds.test_x.shape[0]
        assert total == 40

    def test_invalid_fractions_rejected(self, corpus):
        with pytest.raises(ValueError):
            FederatedDataset(corpus, val_fraction=0.6, test_fraction=0.5)
        with pytest.raises(ValueError):
            FederatedDataset(corpus, val_fraction=-0.1)

    def test_invalid_example_count_rejected(self, corpus):
        fd = FederatedDataset(corpus)
        with pytest.raises(ValueError):
            fd.client_dataset(0, 0)

    def test_train_batches_cover_epoch(self, corpus):
        fd = FederatedDataset(corpus)
        ds = fd.client_dataset(2, 50)
        rng = child_rng(0, "batches")
        batches = ds.train_batches(8, rng)
        n = sum(bx.shape[0] for bx, _ in batches)
        assert n == ds.num_train_examples
        assert all(bx.shape[0] <= 8 for bx, _ in batches)

    def test_train_batches_shuffled(self, corpus):
        fd = FederatedDataset(corpus)
        ds = fd.client_dataset(2, 64)
        b1 = ds.train_batches(64, child_rng(0, "s1"))[0][0]
        b2 = ds.train_batches(64, child_rng(0, "s2"))[0][0]
        assert not np.array_equal(b1, b2)

    def test_evaluation_batch_pools_clients(self, corpus):
        fd = FederatedDataset(corpus)
        x, y = fd.evaluation_batch([1, 2, 3], [30, 30, 30], max_per_client=4)
        assert x.shape[0] <= 12 and x.shape[0] > 0
        assert x.shape == y.shape

    def test_evaluation_batch_empty_rejected(self, corpus):
        fd = FederatedDataset(corpus)
        with pytest.raises(ValueError):
            fd.evaluation_batch([], [])

    def test_batch_size_validation(self, corpus):
        fd = FederatedDataset(corpus)
        ds = fd.client_dataset(2, 10)
        with pytest.raises(ValueError):
            ds.train_batches(0, child_rng(0, "x"))
