"""Tests for DH key exchange, sealed boxes, and attestation."""

import pytest

from repro.secagg import (
    AttestationError,
    DH_PRIME,
    DHKeyPair,
    SealError,
    SigningAuthority,
    hash_binary,
    hash_params,
    open_sealed,
    seal,
    shared_key,
)
from repro.utils import child_rng


class TestDiffieHellman:
    def test_key_agreement(self):
        a = DHKeyPair.generate(child_rng(0, "dh-a"))
        b = DHKeyPair.generate(child_rng(0, "dh-b"))
        assert shared_key(a.private, b.public) == shared_key(b.private, a.public)

    def test_different_pairs_different_keys(self):
        a = DHKeyPair.generate(child_rng(0, "dh-a"))
        b = DHKeyPair.generate(child_rng(0, "dh-b"))
        c = DHKeyPair.generate(child_rng(0, "dh-c"))
        assert shared_key(a.private, b.public) != shared_key(a.private, c.public)

    def test_public_value_in_group(self):
        pair = DHKeyPair.generate(child_rng(1, "dh"))
        assert 1 < pair.public < DH_PRIME

    def test_degenerate_public_rejected(self):
        pair = DHKeyPair.generate(child_rng(2, "dh"))
        for bad in (0, 1, DH_PRIME - 1, DH_PRIME):
            with pytest.raises(ValueError):
                shared_key(pair.private, bad)

    def test_deterministic_generation(self):
        p1 = DHKeyPair.generate(child_rng(3, "dh"))
        p2 = DHKeyPair.generate(child_rng(3, "dh"))
        assert p1.private == p2.private and p1.public == p2.public

    def test_repr_hides_private(self):
        pair = DHKeyPair.generate(child_rng(4, "dh"))
        assert hex(pair.private)[3:10] not in repr(pair)

    def test_shared_key_is_32_bytes(self):
        a = DHKeyPair.generate(child_rng(5, "dh-a"))
        b = DHKeyPair.generate(child_rng(5, "dh-b"))
        assert len(shared_key(a.private, b.public)) == 32


class TestSealedBox:
    KEY = b"k" * 32

    def test_roundtrip(self):
        box = seal(self.KEY, b"sixteen byte msg", seq=3)
        assert open_sealed(self.KEY, box) == b"sixteen byte msg"

    def test_ciphertext_differs_from_plaintext(self):
        box = seal(self.KEY, b"sixteen byte msg")
        assert box.ciphertext != b"sixteen byte msg"

    def test_wrong_key_rejected(self):
        box = seal(self.KEY, b"payload")
        with pytest.raises(SealError):
            open_sealed(b"x" * 32, box)

    def test_tampered_ciphertext_rejected(self):
        box = seal(self.KEY, b"payload")
        bad = box.tampered_with(ciphertext=bytes([box.ciphertext[0] ^ 1]) + box.ciphertext[1:])
        with pytest.raises(SealError):
            open_sealed(self.KEY, bad)

    def test_tampered_tag_rejected(self):
        box = seal(self.KEY, b"payload")
        bad = box.tampered_with(tag=bytes([box.tag[0] ^ 1]) + box.tag[1:])
        with pytest.raises(SealError):
            open_sealed(self.KEY, bad)

    def test_sequence_number_bound(self):
        box = seal(self.KEY, b"payload", seq=1)
        replayed = box.tampered_with(seq=2)
        with pytest.raises(SealError):
            open_sealed(self.KEY, replayed)

    def test_distinct_sequences_distinct_ciphertexts(self):
        b1 = seal(self.KEY, b"payload", seq=1)
        b2 = seal(self.KEY, b"payload", seq=2)
        assert b1.ciphertext != b2.ciphertext

    def test_empty_payload(self):
        box = seal(self.KEY, b"")
        assert open_sealed(self.KEY, box) == b""

    def test_long_payload_spans_keystream_blocks(self):
        msg = bytes(range(256)) * 2
        box = seal(self.KEY, msg)
        assert open_sealed(self.KEY, box) == msg

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            seal(b"short", b"x")
        with pytest.raises(ValueError):
            seal(self.KEY, b"x", seq=-1)


class TestAttestation:
    def test_issue_and_verify(self):
        auth = SigningAuthority()
        bh, ph = hash_binary(b"bin"), hash_params(t=5)
        quote = auth.issue(bh, ph, b"payload")
        auth.verify(quote, bh, ph)  # no raise

    def test_forged_signature_rejected(self):
        auth = SigningAuthority()
        rogue = SigningAuthority(secret=b"not-intel")
        bh, ph = hash_binary(b"bin"), hash_params(t=5)
        quote = rogue.issue(bh, ph, b"payload")
        with pytest.raises(AttestationError, match="signature"):
            auth.verify(quote, bh, ph)

    def test_wrong_binary_rejected(self):
        auth = SigningAuthority()
        bh, ph = hash_binary(b"bin"), hash_params(t=5)
        quote = auth.issue(bh, ph, b"payload")
        with pytest.raises(AttestationError, match="binary"):
            auth.verify(quote, hash_binary(b"evil-bin"), ph)

    def test_wrong_params_rejected(self):
        # The server claims different public parameters than were attested
        # — e.g. a lower threshold t to weaken privacy.
        auth = SigningAuthority()
        bh = hash_binary(b"bin")
        quote = auth.issue(bh, hash_params(t=100), b"payload")
        with pytest.raises(AttestationError, match="parameter"):
            auth.verify(quote, bh, hash_params(t=1))

    def test_payload_covered_by_signature(self):
        # Swapping the DH initial message inside a quote must break it.
        from dataclasses import replace

        auth = SigningAuthority()
        bh, ph = hash_binary(b"bin"), hash_params(t=5)
        quote = auth.issue(bh, ph, b"dh-public-A")
        swapped = replace(quote, payload=b"dh-public-EVIL")
        with pytest.raises(AttestationError):
            auth.verify(swapped, bh, ph)

    def test_params_hash_canonical_order(self):
        assert hash_params(a=1, b=2) == hash_params(b=2, a=1)
        assert hash_params(a=1) != hash_params(a=2)

    def test_binary_hash_distinct(self):
        assert hash_binary(b"v1") != hash_binary(b"v2")
