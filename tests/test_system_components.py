"""Unit tests for Coordinator, Selector, and AggregatorNode in isolation."""

import pytest

from repro.core import TaskConfig, TrainingMode
from repro.sim import MetricsTrace, Simulator
from repro.system import SurrogateAdapter
from repro.system.aggregator import AggregatorNode, FLTaskRuntime
from repro.system.coordinator import Coordinator
from repro.system.selector import Selector
from repro.utils import EventLog, child_rng


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def log():
    return EventLog()


def make_runtime(sim, log, name="t", concurrency=10, goal=2, mode=TrainingMode.ASYNC):
    cfg = TaskConfig(name=name, mode=mode, concurrency=concurrency,
                     aggregation_goal=goal, model_size_bytes=1000)
    return FLTaskRuntime(cfg, SurrogateAdapter(seed=0), sim, MetricsTrace(), log)


def make_coordinator(sim, log, n_aggs=2):
    coord = Coordinator(sim, log, child_rng(0, "coord-test"),
                        heartbeat_interval_s=5.0, heartbeat_miss_limit=2)
    nodes = [AggregatorNode(i, sim, log) for i in range(n_aggs)]
    for n in nodes:
        coord.register_aggregator(n)
    return coord, nodes


class TestCoordinatorPlacement:
    def test_task_placed_on_least_loaded(self, sim, log):
        coord, nodes = make_coordinator(sim, log)
        rt1 = make_runtime(sim, log, "big", concurrency=100)
        rt2 = make_runtime(sim, log, "small", concurrency=5)
        coord.register_task(rt1)
        coord.register_task(rt2)
        # The second task must land on the node NOT hosting the big task.
        assert rt1.node is not rt2.node

    def test_placement_bumps_sequence(self, sim, log):
        coord, _ = make_coordinator(sim, log)
        seq0 = coord.assignment_seq
        coord.register_task(make_runtime(sim, log))
        assert coord.assignment_seq == seq0 + 1

    def test_no_live_aggregator_raises(self, sim, log):
        coord, nodes = make_coordinator(sim, log, n_aggs=1)
        nodes[0].fail()
        with pytest.raises(RuntimeError):
            coord.register_task(make_runtime(sim, log))

    def test_invalid_heartbeat_params(self, sim, log):
        with pytest.raises(ValueError):
            Coordinator(sim, log, child_rng(0, "x"), heartbeat_interval_s=0)


class TestCoordinatorAssignment:
    def test_assignment_respects_demand(self, sim, log):
        coord, _ = make_coordinator(sim, log)
        rt = make_runtime(sim, log, concurrency=2)
        coord.register_task(rt)
        assert coord.assign_client() is rt
        assert coord.assign_client() is rt
        # Demand exhausted (2 pending assignments == concurrency).
        assert coord.assign_client() is None
        assert coord.assignments_made == 2
        assert coord.assignments_rejected == 1

    def test_pending_assignments_counted(self, sim, log):
        coord, _ = make_coordinator(sim, log)
        rt = make_runtime(sim, log, concurrency=5)
        coord.register_task(rt)
        coord.assign_client()
        assert rt.pending_assignments == 1
        assert rt.demand() == 4

    def test_compatibility_filter(self, sim, log):
        coord, _ = make_coordinator(sim, log)
        rt = make_runtime(sim, log, name="lm")
        coord.register_task(rt)
        assert coord.assign_client(compatible_tasks=["other"]) is None
        assert coord.assign_client(compatible_tasks=["lm"]) is rt

    def test_dead_coordinator_rejects(self, sim, log):
        coord, _ = make_coordinator(sim, log)
        coord.register_task(make_runtime(sim, log))
        coord.fail()
        assert coord.assign_client() is None
        assert not coord.accepting_assignments

    def test_recovery_period_blocks_then_allows(self, sim, log):
        coord, _ = make_coordinator(sim, log)
        coord.register_task(make_runtime(sim, log))
        coord.fail()
        coord.recover()
        assert coord.assign_client() is None  # inside the recovery window
        sim.schedule(60.0, lambda: None)
        sim.run_until_idle()
        assert coord.assign_client() is not None

    def test_task_on_dead_node_not_eligible(self, sim, log):
        coord, nodes = make_coordinator(sim, log, n_aggs=1)
        rt = make_runtime(sim, log)
        coord.register_task(rt)
        nodes[0].alive = False
        assert coord.assign_client() is None


class TestCoordinatorFailureSweep:
    def test_missed_heartbeats_trigger_reassignment(self, sim, log):
        coord, nodes = make_coordinator(sim, log)
        rt = make_runtime(sim, log)
        coord.register_task(rt)
        host = rt.node
        other = nodes[1 - host.node_id]
        # Time passes with no heartbeats from the host.
        sim.schedule(60.0, lambda: None)
        sim.run_until_idle()
        coord.on_heartbeat(other, {})
        moved = coord.sweep_failures()
        assert moved == [rt.config.name]
        assert rt.node is other
        assert not host.alive

    def test_healthy_nodes_untouched(self, sim, log):
        coord, nodes = make_coordinator(sim, log)
        rt = make_runtime(sim, log)
        coord.register_task(rt)
        for n in nodes:
            coord.on_heartbeat(n, {})
        assert coord.sweep_failures() == []
        assert rt.node.alive

    def test_sweep_skips_when_coordinator_dead(self, sim, log):
        coord, nodes = make_coordinator(sim, log)
        coord.register_task(make_runtime(sim, log))
        coord.fail()
        nodes[0].fail()
        assert coord.sweep_failures() == []


class TestOverloadRebalancing:
    def _overload(self, node, rt, depth):
        class FakeSession:
            device_id = 1

        for _ in range(depth):
            node.enqueue_update(rt, FakeSession(), None)

    def test_overloaded_node_sheds_lightest_task(self, sim, log):
        coord, nodes = make_coordinator(sim, log)
        # Both tasks land on different nodes; force them onto node 0.
        heavy = make_runtime(sim, log, "heavy", concurrency=100)
        light = make_runtime(sim, log, "light", concurrency=2)
        coord.register_task(heavy)
        host = heavy.node
        other = nodes[1 - host.node_id]
        coord.register_task(light)
        moved_to_host = light.node is host
        if not moved_to_host:
            # Make them cohabit for the test.
            light.node.drop_task("light")
            host.host(light)
            coord.placement["light"] = host.node_id
        host.update_process_time_s = 10.0
        self._overload(host, heavy, 20)
        moved = coord.rebalance_overloaded(queue_threshold_s=5.0)
        assert moved == ["light"]
        assert light.node is other
        assert heavy.node is host

    def test_planned_move_preserves_core_state(self, sim, log):
        coord, nodes = make_coordinator(sim, log)
        a = make_runtime(sim, log, "a", concurrency=50)
        b = make_runtime(sim, log, "b", concurrency=2)
        coord.register_task(a)
        host = a.node
        coord.register_task(b)
        if b.node is not host:
            b.node.drop_task("b")
            host.host(b)
        b.core.register_download(7)  # in-flight client must survive the move
        host.update_process_time_s = 10.0
        self._overload(host, a, 20)
        coord.rebalance_overloaded(queue_threshold_s=5.0)
        assert b.core.in_flight_count() == 1  # planned move: nothing lost

    def test_no_rebalance_below_threshold(self, sim, log):
        coord, nodes = make_coordinator(sim, log)
        coord.register_task(make_runtime(sim, log, "a"))
        coord.register_task(make_runtime(sim, log, "b"))
        assert coord.rebalance_overloaded(queue_threshold_s=5.0) == []

    def test_single_task_node_never_sheds(self, sim, log):
        coord, nodes = make_coordinator(sim, log)
        rt = make_runtime(sim, log, "only")
        coord.register_task(rt)
        host = rt.node
        host.update_process_time_s = 10.0
        self._overload(host, rt, 50)
        assert coord.rebalance_overloaded(queue_threshold_s=5.0) == []
        assert rt.node is host


class TestSelector:
    def test_fresh_map_no_retry(self, sim, log):
        coord, _ = make_coordinator(sim, log)
        coord.register_task(make_runtime(sim, log))
        sel = Selector(0, sim, coord, log)
        sel.refresh_map()
        rt, extra = sel.route_checkin()
        assert rt is not None and extra == 0.0
        assert sel.stale_map_retries == 0

    def test_stale_map_costs_retry_then_refreshes(self, sim, log):
        coord, _ = make_coordinator(sim, log)
        sel = Selector(0, sim, coord, log)
        coord.register_task(make_runtime(sim, log))  # bumps the map seq
        assert sel.map_is_stale
        rt, extra = sel.route_checkin()
        assert extra > 0.0
        assert sel.stale_map_retries == 1
        assert not sel.map_is_stale
        _, extra2 = sel.route_checkin()
        assert extra2 == 0.0

    def test_routing_counter(self, sim, log):
        coord, _ = make_coordinator(sim, log)
        coord.register_task(make_runtime(sim, log))
        sel = Selector(0, sim, coord, log)
        sel.refresh_map()
        for _ in range(3):
            sel.route_checkin()
        assert sel.checkins_routed == 3


class TestAggregatorNode:
    def test_workload_estimate(self, sim, log):
        node = AggregatorNode(0, sim, log)
        rt = make_runtime(sim, log, concurrency=10)
        node.host(rt)
        assert node.estimated_workload() == 10 * 1000

    def test_queueing_serializes_busy_drain_threads(self, sim, log):
        node = AggregatorNode(0, sim, log, drain_threads=1, update_process_time_s=1.0)
        rt = make_runtime(sim, log, goal=10)
        node.host(rt)

        class FakeSession:
            device_id = 1

        # Two updates arriving together on one drain thread: the second waits.
        node.enqueue_update(rt, FakeSession(), None)
        node.enqueue_update(rt, FakeSession(), None)
        assert node.queue_depth_seconds() == pytest.approx(2.0)

    def test_parallel_drain_threads_absorb_burst(self, sim, log):
        node = AggregatorNode(0, sim, log, drain_threads=4, update_process_time_s=1.0)
        rt = make_runtime(sim, log, goal=10)
        node.host(rt)

        class FakeSession:
            device_id = 1

        for _ in range(4):
            node.enqueue_update(rt, FakeSession(), None)
        assert node.queue_depth_seconds() == pytest.approx(1.0)

    def test_drop_task(self, sim, log):
        node = AggregatorNode(0, sim, log)
        rt = make_runtime(sim, log)
        node.host(rt)
        assert node.drop_task(rt.config.name) is rt
        assert node.drop_task("missing") is None

    def test_invalid_args(self, sim, log):
        with pytest.raises(ValueError):
            AggregatorNode(0, sim, log, drain_threads=0)
        with pytest.raises(ValueError):
            AggregatorNode(0, sim, log, update_process_time_s=-1)

    def test_recover_resets_shards(self, sim, log):
        node = AggregatorNode(0, sim, log, drain_threads=1, update_process_time_s=1.0)
        rt = make_runtime(sim, log)
        node.host(rt)

        class FakeSession:
            device_id = 1

        node.enqueue_update(rt, FakeSession(), None)
        node.fail()
        node.recover()
        assert node.alive
        assert node.queue_depth_seconds() == 0.0


class TestTaskRuntimeDemand:
    def test_async_demand_formula(self, sim, log):
        rt = make_runtime(sim, log, concurrency=10)
        assert rt.demand() == 10
        rt.pending_assignments = 3
        assert rt.demand() == 7

    def test_sync_demand_capped_by_concurrency(self, sim, log):
        rt = make_runtime(sim, log, concurrency=4, goal=10, mode=TrainingMode.SYNC)
        assert rt.demand() <= 4


class TestSystemConfigDrainThreadsRename:
    """SystemConfig.n_shards -> drain_threads (ISSUE 5 satellite)."""

    def test_drain_threads_is_the_field(self):
        from repro.system import SystemConfig

        cfg = SystemConfig(drain_threads=7)
        assert cfg.drain_threads == 7

    def test_legacy_kwarg_maps_with_deprecation_warning(self):
        from repro.system import SystemConfig

        with pytest.warns(DeprecationWarning, match="drain_threads"):
            cfg = SystemConfig(n_shards=7)
        assert cfg.drain_threads == 7

    def test_legacy_property_warns(self):
        from repro.system import SystemConfig

        cfg = SystemConfig(drain_threads=5)
        with pytest.warns(DeprecationWarning, match="drain_threads"):
            assert cfg.n_shards == 5

    def test_both_spellings_rejected(self):
        from repro.system import SystemConfig

        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="n_shards"):
                SystemConfig(drain_threads=2, n_shards=3)

    def test_drain_threads_validated(self):
        from repro.system import SystemConfig

        with pytest.raises(ValueError, match="drain_threads"):
            SystemConfig(drain_threads=0)

    def test_node_drain_threads_flow_from_config(self, sim, log):
        from repro.sim import DevicePopulation, PopulationConfig
        from repro.system import FederatedSimulation, SystemConfig

        pop = DevicePopulation(PopulationConfig(n_devices=50), seed=0)
        cfg = TaskConfig(name="t", mode=TrainingMode.ASYNC, concurrency=8,
                         aggregation_goal=4, model_size_bytes=1000)
        fs = FederatedSimulation(
            [(cfg, SurrogateAdapter(seed=0))], pop,
            system=SystemConfig(drain_threads=2), seed=0,
        )
        assert all(node.drain_threads == 2 for node in fs.aggregators)
