"""CLI, registry, sweep-executor and cache tests for the harness.

Covers argument parsing (``--seeds`` ranges, ``--grid``), experiment
dispatch through the registry, cache hit/miss behavior, failure isolation
(one broken experiment no longer kills an ``all`` run), and the core
determinism contract: a parallel sweep aggregates to exactly the same
JSON as the serial sweep.
"""

import json

import numpy as np
import pytest

from repro.harness import SMOKE, Scale
from repro.harness import registry
from repro.harness.__main__ import main, parse_grid, parse_seeds
from repro.harness.cache import ResultCache, cell_fingerprint
from repro.harness.figures import Fig12Result, Fig9Result
from repro.harness.registry import ExperimentSpec, from_jsonable, to_jsonable
from repro.harness.sweep import (
    SweepCell,
    SweepError,
    aggregate_payloads,
    build_cells,
    expand_grid,
    run_sweep,
)

MICRO = Scale(
    name="micro",
    base_concurrency=8,
    base_goal=2,
    concurrency_sweep=(4, 8),
    goal_sweep=(2, 4),
    population=1500,
    sim_hours=0.5,
    critical_goal=4.0,
)


class TestSeedParsing:
    def test_comma_list(self):
        assert parse_seeds("0,1,2") == [0, 1, 2]

    def test_range(self):
        assert parse_seeds("0..4") == [0, 1, 2, 3, 4]

    def test_mixed_and_dedup(self):
        assert parse_seeds("0,2..4,2") == [0, 2, 3, 4]

    def test_single(self):
        assert parse_seeds("7") == [7]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_seeds(",")

    def test_backwards_range_rejected(self):
        with pytest.raises(ValueError):
            parse_seeds("4..0")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_seeds("a,b")


class TestGridParsing:
    def test_values_coerced(self):
        grid = parse_grid(["k=1,2", "lr=0.1,0.2", "mode=a,b"])
        assert grid == {"k": [1, 2], "lr": [0.1, 0.2], "mode": ["a", "b"]}

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            parse_grid(["no-equals"])

    def test_empty_axis_rejected(self):
        # An empty axis would silently produce a zero-cell sweep.
        with pytest.raises(ValueError, match="no values"):
            parse_grid(["k=,"])

    def test_duplicate_axis_rejected(self):
        # Last-flag-wins would silently drop the first axis's values.
        with pytest.raises(ValueError, match="twice"):
            parse_grid(["k=1", "k=2,3"])

    def test_duplicate_values_deduped(self):
        # A repeated value would double-weight that point in the aggregate.
        assert parse_grid(["k=1,1,2"]) == {"k": [1, 2]}

    def test_expand_grid_product(self):
        points = expand_grid({"a": [1, 2], "b": ["x"]})
        assert points == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]

    def test_expand_grid_empty(self):
        assert expand_grid({}) == [{}]
        assert expand_grid(None) == [{}]


class TestRegistry:
    def test_all_figures_registered(self):
        expected = {"fig2", "fig3", "fig6", "fig7", "fig8", "fig9",
                    "fig10", "fig11", "fig12", "fig13", "table1"}
        assert expected.issubset(set(registry.names()))

    def test_get_unknown_raises_with_names(self):
        with pytest.raises(KeyError, match="fig9"):
            registry.get("nope")

    def test_duplicate_registration_rejected(self):
        spec = registry.get("fig6")
        with pytest.raises(ValueError):
            registry.register(spec)

    def test_dispatch_runs_experiment(self, capsys):
        spec = registry.get("fig6")
        res = spec.run(SMOKE, 0)
        spec.printer(res)
        assert "Figure 6" in capsys.readouterr().out


class TestCodec:
    def test_fig9_roundtrip(self):
        res = registry.get("fig9").run(MICRO, 0)
        payload = to_jsonable(res)
        back = from_jsonable(Fig9Result, json.loads(json.dumps(payload)))
        assert back == res

    def test_integer_arrays_keep_dtype(self):
        from repro.harness.figures import Fig7Result

        res = Fig7Result(
            sync_times=np.array([0.0, 1.0]), sync_active=np.array([3, 5]),
            async_times=np.array([0.0, 1.0]), async_active=np.array([4, 6]),
            concurrency=8, sync_utilization=0.5, async_utilization=0.9,
        )
        back = from_jsonable(Fig7Result, json.loads(json.dumps(to_jsonable(res))))
        assert back.sync_active.dtype.kind == "i", "client counts must stay integer"
        assert back.sync_times.dtype.kind == "f"

    def test_optional_none_roundtrip(self):
        res = Fig12Result(
            curves={"a": (np.array([1.0, 2.0]), np.array([3.0, 4.0]))},
            concurrency=8, small_goal=2, big_goal=6,
        )
        back = from_jsonable(Fig12Result, json.loads(json.dumps(to_jsonable(res))))
        assert back.concurrency == 8
        np.testing.assert_array_equal(back.curves["a"][1], [3.0, 4.0])
        assert isinstance(back.curves["a"], tuple)
        assert isinstance(back.curves["a"][0], np.ndarray)


class TestCache:
    def test_fingerprint_stable_and_sensitive(self):
        fp = cell_fingerprint("fig9", SMOKE, 0, {})
        assert fp == cell_fingerprint("fig9", SMOKE, 0, {})
        assert fp != cell_fingerprint("fig9", SMOKE, 1, {})
        assert fp != cell_fingerprint("fig8", SMOKE, 0, {})
        assert fp != cell_fingerprint("fig9", MICRO, 0, {})
        assert fp != cell_fingerprint("fig9", SMOKE, 0, {"target_loss": 2.6})

    def test_fingerprint_tracks_code_identity(self, monkeypatch):
        fp_real = cell_fingerprint("fig9", SMOKE, 0, {})
        monkeypatch.setattr(registry, "code_digest", lambda name: "0" * 16)
        fp_other_code = cell_fingerprint("fig9", SMOKE, 0, {})
        assert fp_real != fp_other_code, \
            "editing the runner's module must invalidate cached cells"

    def test_code_digest_covers_whole_package(self, tmp_path, monkeypatch):
        # An edit to any sibling module of the runner (e.g. harness/runner.py)
        # must change the digest, not just the defining file.
        pkg = tmp_path / "fakepkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("x = 1\n")
        (pkg / "sibling.py").write_text("y = 1\n")
        monkeypatch.syspath_prepend(str(tmp_path))
        registry._module_digest.cache_clear()
        d1 = registry._module_digest("fakepkg.mod")
        (pkg / "sibling.py").write_text("y = 2\n")
        registry._module_digest.cache_clear()
        d2 = registry._module_digest("fakepkg.mod")
        registry._module_digest.cache_clear()
        assert d1 is not None and d1 != d2

    def test_invariant_experiment_fingerprints_collapse(self):
        # fig6 declares uses_seed=False and uses_scale=False.
        fp = cell_fingerprint("fig6", SMOKE, 0, {})
        assert fp == cell_fingerprint("fig6", SMOKE, 7, {})
        assert fp == cell_fingerprint("fig6", MICRO, 0, {})
        assert fp != cell_fingerprint("fig6", SMOKE, 0, {"model_bytes": 1})

    def test_invariant_experiment_gets_one_cell(self):
        assert len(build_cells(["fig6"], SMOKE, seeds=[0, 1, 2])) == 1
        assert len(build_cells(["fig9"], SMOKE, seeds=[0, 1, 2])) == 3

    def test_invariant_experiment_cell_pins_seed_zero(self):
        # The fingerprint of a uses_seed=False experiment pins seed 0;
        # the constructed cell must agree even when the sweep's seed
        # list doesn't contain 0 (seeds[:1] used to leak seed 3 in).
        cells = build_cells(["fig6"], SMOKE, seeds=[3, 4])
        assert len(cells) == 1
        assert cells[0].seed == 0
        assert cells[0].fingerprint == cell_fingerprint("fig6", SMOKE, 0, {})
        # Seed-using experiments keep the requested seeds verbatim.
        assert [c.seed for c in build_cells(["fig9"], SMOKE, seeds=[3, 4])] \
            == [3, 4]

    def test_store_load_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = cell_fingerprint("fig6", SMOKE, 0, {})
        assert cache.load(fp) is None
        cache.store(fp, {"experiment": "fig6", "result": {"x": 1}})
        assert fp in cache
        assert cache.load(fp)["result"] == {"x": 1}
        assert len(cache) == 1
        assert cache.clear() == 1
        assert cache.load(fp) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = cell_fingerprint("fig6", SMOKE, 0, {})
        p = cache.path(fp)
        p.parent.mkdir(parents=True)
        p.write_text("{not json")
        assert cache.load(fp) is None

    def test_byte_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = cell_fingerprint("fig6", SMOKE, 0, {})
        p = cache.path(fp)
        p.parent.mkdir(parents=True)
        p.write_bytes(b"\xff\xfe\x00garbage\x80")
        assert cache.load(fp) is None

    def test_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = cell_fingerprint("fig6", SMOKE, 0, {})
        cache.store(fp, {"result": 1})
        data = json.loads(cache.path(fp).read_text())
        data["version"] = -1
        cache.path(fp).write_text(json.dumps(data))
        assert cache.load(fp) is None


class TestAggregation:
    def test_scalar_stats(self):
        agg = aggregate_payloads([{"x": 1.0}, {"x": 3.0}])
        assert agg["x"]["mean"] == 2.0
        assert agg["x"]["min"] == 1.0 and agg["x"]["max"] == 3.0
        assert agg["x"]["n"] == 2

    def test_none_counted_as_missing(self):
        agg = aggregate_payloads([{"t": None}, {"t": 4.0}])
        assert agg["t"]["mean"] == 4.0
        assert agg["t"]["n"] == 1 and agg["t"]["n_missing"] == 1

    def test_missing_key_in_later_seed_counted_as_missing(self):
        # Structurally heterogeneous payloads (a seed payload without
        # one of the keys) used to KeyError; a missing key is a missing
        # value, exactly like an explicit None.
        agg = aggregate_payloads([{"x": 1.0, "y": 2.0}, {"x": 3.0}])
        assert agg["x"]["n"] == 2 and agg["x"]["mean"] == 2.0
        assert agg["y"]["n"] == 1 and agg["y"]["n_missing"] == 1
        assert agg["y"]["mean"] == 2.0

    def test_key_only_in_later_seed_still_appears(self):
        agg = aggregate_payloads([{"x": 1.0}, {"x": 2.0, "extra": 5.0}])
        assert agg["extra"]["n"] == 1 and agg["extra"]["n_missing"] == 1
        assert agg["extra"]["mean"] == 5.0

    def test_all_seeds_missing_a_key_yields_empty_stat(self):
        agg = aggregate_payloads([{"x": None}, {"x": None}])
        assert agg["x"]["n"] == 0 and agg["x"]["n_missing"] == 2
        assert agg["x"]["mean"] is None

    def test_nested_dict_missing_in_one_seed_reports_n_missing(self):
        agg = aggregate_payloads([
            {"sub": {"a": 1.0}},
            {"sub": {"a": 3.0}},
            {},
        ])
        assert agg["sub"]["a"]["mean"] == 2.0
        assert agg["sub"]["n_missing"] == 1

    def test_homogeneous_payloads_unchanged_by_heterogeneity_handling(self):
        payloads = [{"x": 1.0, "sub": {"a": 2.0}}, {"x": 3.0, "sub": {"a": 4.0}}]
        agg = aggregate_payloads(payloads)
        assert agg["x"] == {
            "kind": "scalar", "mean": 2.0, "std": 1.0, "min": 1.0,
            "max": 3.0, "n": 2, "n_missing": 0,
        }
        assert "n_missing" not in agg["sub"]

    def test_equal_length_series_elementwise(self):
        agg = aggregate_payloads([{"ys": [1.0, 2.0]}, {"ys": [3.0, 4.0]}])
        assert agg["ys"]["kind"] == "series"
        assert agg["ys"]["mean"] == [2.0, 3.0]

    def test_ragged_series_summarized(self):
        agg = aggregate_payloads([{"ys": [1.0]}, {"ys": [2.0, 4.0]}])
        assert agg["ys"]["kind"] == "ragged"
        assert agg["ys"]["length"]["mean"] == 1.5

    def test_ragged_all_none_seed_counts_as_missing(self):
        # A seed with no numeric entries must not contribute a fake 0.0.
        agg = aggregate_payloads([{"ys": [None]}, {"ys": [1.0, 2.0]}])
        stat = agg["ys"]["per_seed_mean"]
        assert stat["mean"] == 1.5
        assert stat["n"] == 1 and stat["n_missing"] == 1

    @pytest.mark.parametrize("n", [95, 96, 100, 49, 200])
    def test_band_series_covers_full_range(self, n):
        from repro.harness.report import format_aggregate

        # Any length vs width 48: the sparkline must always include both
        # endpoints — stride sampling can silently drop the tail.
        ramp = [float(i) for i in range(n)]
        agg = aggregate_payloads([{"ys": ramp}, {"ys": ramp}])
        out = format_aggregate(agg)
        assert f"[0..{n - 1}]" in out
        spark = out.split(": ")[1].split("  ")[0]
        assert spark[-1] == "█", "last mark must be the series maximum"
        assert spark[0] == "▁", "first mark must be the series minimum"

    def test_width_one_sparkline(self):
        # width=1 is part of format_series's public signature; the
        # endpoint-inclusive sampler must not divide by zero on it.
        from repro.harness import format_series

        out = format_series("s", [0, 1, 2], [1.0, 2.0, 3.0], width=1)
        assert "[1..3]" in out

    def test_band_series_preserves_gap_positions(self):
        from repro.harness.report import format_aggregate

        agg = aggregate_payloads([
            {"ys": [1.0, None, 3.0]},
            {"ys": [2.0, None, 5.0]},
        ])
        out = format_aggregate(agg)
        spark = out.split(": ")[1].split("  ")[0]
        assert spark[1] == "·", "all-missing column must stay a visible gap"
        assert len(spark) == 3

    def test_nested_rows(self):
        agg = aggregate_payloads([
            {"rows": [{"v": 1.0}, {"v": 10.0}]},
            {"rows": [{"v": 3.0}, {"v": 30.0}]},
        ])
        assert agg["rows"][0]["v"]["mean"] == 2.0
        assert agg["rows"][1]["v"]["mean"] == 20.0


def _register_probe(runs):
    """A cheap injected experiment (function is module-level for pickling)."""
    def runner(scale, seed, **params):
        runs.append(seed)
        return {"seed_echo": seed}

    def printer(res):
        print(f"probe seed={res['seed_echo']}")

    spec = ExperimentSpec("probe", runner, printer, description="test probe")
    registry.register(spec, replace=True)
    return spec


@pytest.fixture
def probe():
    runs = []
    _register_probe(runs)
    yield runs
    registry.unregister("probe")


@pytest.fixture
def failing():
    def runner(scale, seed, **params):
        raise RuntimeError("boom")

    registry.register(
        ExperimentSpec("failing", runner, print, description="always raises"),
        replace=True,
    )
    yield
    registry.unregister("failing")


class TestSweepExecutor:
    def test_serial_sweep_and_cache_hits(self, tmp_path, probe):
        cache = ResultCache(tmp_path)
        cells = build_cells(["probe"], MICRO, seeds=[0, 1, 2])
        sweep = run_sweep(cells, jobs=1, cache=cache)
        assert sweep.misses == 3 and sweep.hits == 0
        assert probe == [0, 1, 2]

        again = run_sweep(cells, jobs=1, cache=cache)
        assert again.hits == 3 and again.misses == 0
        assert probe == [0, 1, 2], "cache hits must not re-run the experiment"
        assert [c.payload["result"] for c in again.cells] == \
               [c.payload["result"] for c in sweep.cells]

    def test_grid_cells_and_grouping(self, tmp_path, probe):
        cells = build_cells(["probe"], MICRO, seeds=[0, 1], grid={"k": [1, 2]})
        assert len(cells) == 4
        sweep = run_sweep(cells, jobs=1, cache=ResultCache(tmp_path))
        groups = sweep.groups()
        assert len(groups) == 2
        assert all(len(g.cells) == 2 for g in groups)
        assert groups[0].params == (("k", 1),)

    def test_unknown_experiment_rejected_upfront(self):
        with pytest.raises(KeyError):
            build_cells(["does-not-exist"], MICRO, seeds=[0])

    def test_cache_store_failure_keeps_result(self, tmp_path, probe):
        # An unwritable cache must not turn a computed result into a
        # cell failure — the sweep completes, merely uncached.
        class BrokenStoreCache(ResultCache):
            def store(self, fingerprint, payload):
                raise OSError("disk full")

        messages = []
        cells = build_cells(["probe"], MICRO, seeds=[0, 1])
        sweep = run_sweep(cells, jobs=1, cache=BrokenStoreCache(tmp_path),
                          progress=messages.append)
        assert len(sweep.cells) == 2 and sweep.misses == 2
        assert any("cache-store failed" in m for m in messages)

    def test_failing_cell_keeps_siblings_cached(self, tmp_path, probe, failing):
        cache = ResultCache(tmp_path)
        cells = build_cells(["probe", "failing"], MICRO, seeds=[0, 1])
        with pytest.raises(SweepError, match="failing") as excinfo:
            run_sweep(cells, jobs=1, cache=cache)
        # The error carries the partial result over the completed cells,
        # and its miss count excludes the failed cells.
        assert excinfo.value.result is not None
        assert len(excinfo.value.result.cells) == 2
        assert excinfo.value.result.misses == 2
        # The probe cells were cached despite the failures after them...
        assert cells[0].fingerprint in cache and cells[1].fingerprint in cache
        assert probe == [0, 1]
        # ...so a resume after the fix only re-runs the broken cells.
        ok = ExperimentSpec("failing", lambda scale, seed, **p: {"fixed": 1.0},
                            print, description="fixed")
        registry.register(ok, replace=True)
        resumed = run_sweep(cells, jobs=1, cache=cache)
        assert resumed.hits == 2 and resumed.misses == 2
        assert probe == [0, 1], "probe must not re-run on resume"

    def test_parallel_equals_serial(self, tmp_path):
        cells = build_cells(["fig9"], MICRO, seeds=[0, 1])
        serial = run_sweep(cells, jobs=1, cache=ResultCache(tmp_path / "s"))
        parallel = run_sweep(cells, jobs=2, cache=ResultCache(tmp_path / "p"))
        a = json.dumps([c.payload["result"] for c in serial.cells], sort_keys=True)
        b = json.dumps([c.payload["result"] for c in parallel.cells], sort_keys=True)
        assert a == b
        agg_a = json.dumps(serial.groups()[0].aggregate, sort_keys=True)
        agg_b = json.dumps(parallel.groups()[0].aggregate, sort_keys=True)
        assert agg_a == agg_b


class TestCLI:
    def test_run_single(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out and "took" in out

    def test_unknown_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "table1" in out

    def test_list_position_independent(self, capsys):
        assert main(["fig9", "--list"]) == 0
        assert "table1" in capsys.readouterr().out

    def test_list_subcommand(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert len(lines) == len(registry.names())
        # Every line pairs a registered name with its description.
        for line in lines:
            name = line.split()[0]
            assert name in registry.names()
            assert registry.get(name).description.strip() in line

    def test_list_subcommand_matches_flag(self, capsys):
        assert main(["list"]) == 0
        sub = capsys.readouterr().out
        assert main(["--list"]) == 0
        flag = capsys.readouterr().out
        assert sub == flag

    def test_no_experiment_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_failure_reports_nonzero_and_continues(self, capsys, failing, monkeypatch):
        # Shrink the registry so `all` = {failing, fig6}: the broken
        # experiment must not stop fig6 from rendering, and the exit
        # code must be nonzero.
        keep = {n: registry._REGISTRY[n] for n in ("failing", "fig6")}
        monkeypatch.setattr(registry, "_REGISTRY", keep)
        assert main(["all"]) == 1
        captured = capsys.readouterr()
        assert "boom" in captured.err and "FAILED: failing" in captured.err
        assert "Figure 6" in captured.out

    def test_single_failure_nonzero(self, capsys, failing):
        assert main(["failing"]) == 1
        assert "boom" in capsys.readouterr().err

    def test_broken_printer_is_isolated_too(self, capsys, monkeypatch):
        # The renderer is part of the experiment contract: a printer that
        # raises must not escape the failure isolation of an `all` run.
        def bad_printer(res):
            raise ValueError("render exploded")

        spec = registry.get("fig6")
        broken = ExperimentSpec("fig6", spec.runner, bad_printer,
                                spec.result_type)
        monkeypatch.setattr(registry, "_REGISTRY", {"fig6": broken})
        assert main(["all"]) == 1
        captured = capsys.readouterr()
        assert "render exploded" in captured.err
        assert "FAILED: fig6" in captured.err

    def test_sweep_cli_cache_roundtrip(self, capsys, tmp_path, probe):
        cache_dir = str(tmp_path / "c")
        args = ["sweep", "probe", "--seeds", "0,1", "--jobs", "1",
                "--cache-dir", cache_dir]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "0 cached, 2 ran" in first
        assert "mean/std/min/max over 2 seeds" in first

        assert main(args) == 0
        second = capsys.readouterr().out
        assert "2 cached, 0 ran" in second
        assert probe == [0, 1], "second CLI run must be served from cache"

    def test_sweep_json_report(self, tmp_path, probe):
        out = tmp_path / "report.json"
        assert main(["sweep", "probe", "--seeds", "0..2", "--jobs", "1",
                     "--cache-dir", str(tmp_path / "c"), "--json", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["seeds"] == [0, 1, 2]
        assert len(report["cells"]) == 3
        assert report["aggregates"][0]["aggregate"]["seed_echo"]["mean"] == 1.0
        # Cold-run and cache-hit cells must share one schema: all versioned.
        assert all("version" in c for c in report["cells"])

    def test_sweep_all_with_unknown_name_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", "all", "fig99", "--seeds", "0",
                  "--cache-dir", str(tmp_path)])

    def test_sweep_bad_seeds_exit_code(self, capsys, probe):
        assert main(["sweep", "probe", "--seeds", "x"]) == 2
        assert "error" in capsys.readouterr().err

    def test_sweep_grid_with_multiple_experiments_rejected(self, capsys):
        # Grid keys are runner keywords; they differ per experiment.
        assert main(["sweep", "fig6", "fig9", "--seeds", "0",
                     "--grid", "target_loss=2.6"]) == 2
        assert "one experiment" in capsys.readouterr().err

    def test_sweep_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["sweep", "nope", "--seeds", "0"])

    def test_sweep_broken_renderer_keeps_json_and_exits_nonzero(
        self, capsys, tmp_path, monkeypatch
    ):
        spec = registry.get("fig6")

        def boom(res):
            raise ValueError("render exploded")

        monkeypatch.setitem(
            registry._REGISTRY, "fig6",
            ExperimentSpec("fig6", spec.runner, boom, spec.result_type),
        )
        out = tmp_path / "report.json"
        assert main(["sweep", "fig6", "--seeds", "0", "--jobs", "1",
                     "--cache-dir", str(tmp_path / "c"),
                     "--json", str(out)]) == 1
        captured = capsys.readouterr()
        assert "render exploded" in captured.err
        # The machine-readable artifact survives the renderer failure.
        assert json.loads(out.read_text())["cells"]

    def test_sweep_single_seed_renders_figure(self, capsys, tmp_path):
        assert main(["sweep", "fig6", "--seeds", "0", "--jobs", "1",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "Figure 6" in capsys.readouterr().out


class TestSweepCell:
    def test_label_and_fingerprint(self):
        cell = SweepCell("fig9", SMOKE, 3, (("target_loss", 2.6),))
        assert "fig9" in cell.label() and "seed=3" in cell.label()
        assert cell.fingerprint == cell_fingerprint(
            "fig9", SMOKE, 3, {"target_loss": 2.6}
        )

    def test_runner_module_recorded_but_not_fingerprinted(self):
        # Spawn-start workers import this module to rebuild the registry.
        cells = build_cells(["fig9"], SMOKE, seeds=[0])
        assert cells[0].runner_module == "repro.harness.figures"
        bare = SweepCell("fig9", SMOKE, 0)
        assert cells[0].fingerprint == bare.fingerprint


class TestListCommand:
    def test_every_experiment_listed_with_description(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        lines = [ln for ln in out.splitlines() if ln.strip()]
        listed = {ln.split()[0] for ln in lines}
        assert listed == set(registry.names())
        for spec in registry.specs():
            assert spec.description, f"{spec.name} has no description"
            line = next(ln for ln in lines if ln.split()[0] == spec.name)
            assert spec.description in line

    def test_flags_reflect_metadata(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        for spec in registry.specs():
            line = next(
                ln for ln in out.splitlines() if ln.split() and
                ln.split()[0] == spec.name
            )
            assert ("scale-free" in line) == (not spec.uses_scale)
            assert ("deterministic" in line) == (not spec.uses_seed)
            assert ("grid:" in line) == bool(spec.default_grid)
