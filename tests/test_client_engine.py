"""Tests for the Edge Training Engine (Example Store + Executor)."""

import numpy as np
import pytest

from repro.client import (
    ExampleStore,
    Executor,
    NextWordTask,
    RetentionPolicy,
    TopicClassificationTask,
)
from repro.data import CorpusSpec, TopicMarkovCorpus
from repro.nn import ModelConfig
from repro.utils import child_rng


def seq_example(rng, length=6, vocab=16):
    x = rng.integers(0, vocab, length).astype(np.int32)
    y = np.roll(x, -1).astype(np.int32)
    return x, y


class TestRetentionPolicy:
    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            RetentionPolicy(max_age_s=0)
        with pytest.raises(ValueError):
            RetentionPolicy(max_examples=0)


class TestExampleStore:
    def test_ingest_and_read(self):
        store = ExampleStore()
        rng = child_rng(0, "store")
        for t in range(5):
            x, y = seq_example(rng)
            store.ingest(x, y, now=float(t))
        xs, ys = store.training_arrays(now=10.0)
        assert xs.shape[0] == 5 and ys.shape[0] == 5

    def test_age_expiry(self):
        store = ExampleStore(RetentionPolicy(max_age_s=100.0, max_examples=None))
        rng = child_rng(1, "store")
        for t in (0.0, 50.0, 120.0):
            x, y = seq_example(rng)
            store.ingest(x, y, now=t)
        # At t=160: the t=0 and t=50 examples are beyond the 100s window.
        assert store.count(now=160.0) == 1
        assert store.total_expired == 2

    def test_expiry_enforced_on_read_path(self):
        store = ExampleStore(RetentionPolicy(max_age_s=10.0, max_examples=None))
        rng = child_rng(2, "store")
        x, y = seq_example(rng)
        store.ingest(x, y, now=0.0)
        with pytest.raises(ValueError, match="no live examples"):
            store.training_arrays(now=1000.0)

    def test_count_eviction_oldest_first(self):
        store = ExampleStore(RetentionPolicy(max_age_s=None, max_examples=3))
        rng = child_rng(3, "store")
        first_x, first_y = seq_example(rng)
        store.ingest(first_x, first_y, now=0.0)
        for t in range(1, 4):
            x, y = seq_example(rng)
            store.ingest(x, y, now=float(t))
        xs, _ = store.training_arrays(now=5.0)
        assert xs.shape[0] == 3
        assert not any(np.array_equal(row, first_x) for row in xs)

    def test_task_permission_enforced(self):
        store = ExampleStore(
            RetentionPolicy(allowed_tasks=frozenset({"next-word"}))
        )
        rng = child_rng(4, "store")
        x, y = seq_example(rng)
        store.ingest(x, y, now=0.0)
        with pytest.raises(PermissionError):
            store.training_arrays(now=1.0, task="ads-ranking")
        with pytest.raises(PermissionError):
            store.training_arrays(now=1.0)  # anonymous reader also barred
        xs, _ = store.training_arrays(now=1.0, task="next-word")
        assert xs.shape[0] == 1

    def test_time_must_be_monotone(self):
        store = ExampleStore()
        rng = child_rng(5, "store")
        x, y = seq_example(rng)
        store.ingest(x, y, now=10.0)
        with pytest.raises(ValueError):
            store.ingest(x, y, now=5.0)

    def test_ingest_batch(self):
        store = ExampleStore()
        rng = child_rng(6, "store")
        xs = rng.integers(0, 16, (4, 6)).astype(np.int32)
        ys = np.roll(xs, -1, axis=1).astype(np.int32)
        store.ingest_batch(xs, ys, now=0.0)
        assert store.count(0.0) == 4


class TestExecutorTaskSwap:
    def test_next_word_task_trains(self):
        task = NextWordTask(ModelConfig(vocab_size=16, embed_dim=6, hidden_dim=8))
        ex = Executor(task, lr=1.0, batch_size=4, epochs=3, seed=0)
        rng = child_rng(7, "exec")
        x = rng.integers(0, 16, (12, 6)).astype(np.int32)
        y = np.roll(x, -1, axis=1).astype(np.int32)
        flat = task.init_params(seed=1)
        before = task.evaluate(flat, x, y)
        res = ex.run(flat, x, y, client_id=3)
        after = task.evaluate(flat + res.delta, x, y)
        assert after < before
        assert res.num_examples == 12

    def test_topic_classification_task_trains(self):
        corpus = TopicMarkovCorpus(
            CorpusSpec(vocab_size=24, n_topics=3, seq_len=10,
                       topic_concentration=0.1, topic_sharpness=8.0),
            seed=2,
        )
        xs, labels = [], []
        for cid in range(40):
            x, _ = corpus.generate_sequences(cid, 4)
            label = int(np.argmax(corpus.client_topic_mixture(cid)))
            xs.append(x)
            labels.extend([label] * 4)
        x = np.concatenate(xs)
        y = np.array(labels, dtype=np.int64)

        task = TopicClassificationTask(vocab_size=24, n_classes=3)
        ex = Executor(task, lr=2.0, batch_size=16, epochs=20, seed=0)
        flat = task.init_params(seed=0)
        res = ex.run(flat, x, y)
        acc = task.accuracy(flat + res.delta, x, y)
        assert acc > 0.5  # well above the 1/3 chance level

    def test_same_executor_runs_both_tasks(self):
        # The swap the paper's Executor exists for: same engine, two tasks.
        rng = child_rng(8, "exec")
        lm = NextWordTask(ModelConfig(vocab_size=16, embed_dim=4, hidden_dim=6))
        clf = TopicClassificationTask(vocab_size=16, n_classes=2)
        for task, y in (
            (lm, np.roll(rng.integers(0, 16, (8, 5)), -1, axis=1).astype(np.int32)),
            (clf, rng.integers(0, 2, 8).astype(np.int64)),
        ):
            x = rng.integers(0, 16, (8, 5)).astype(np.int32)
            ex = Executor(task, lr=0.5, batch_size=4, seed=0)
            res = ex.run(task.init_params(0), x, y)
            assert res.delta.shape == (task.num_params,)

    def test_executor_from_store_respects_policy(self):
        task = NextWordTask(ModelConfig(vocab_size=16, embed_dim=4, hidden_dim=6))
        ex = Executor(task, lr=0.5, batch_size=4, seed=0)
        store = ExampleStore(RetentionPolicy(allowed_tasks=frozenset({"lm"})))
        rng = child_rng(9, "exec")
        xs = rng.integers(0, 16, (6, 5)).astype(np.int32)
        store.ingest_batch(xs, np.roll(xs, -1, axis=1).astype(np.int32), now=0.0)
        flat = task.init_params(0)
        res = ex.run_from_store(flat, store, now=1.0, task_name="lm")
        assert res.num_examples == 6
        with pytest.raises(PermissionError):
            ex.run_from_store(flat, store, now=1.0, task_name="other")

    def test_executor_validation(self):
        task = TopicClassificationTask(vocab_size=8, n_classes=2)
        with pytest.raises(ValueError):
            Executor(task, batch_size=0)
        with pytest.raises(ValueError):
            Executor(task, epochs=0)
        with pytest.raises(ValueError):
            TopicClassificationTask(vocab_size=1, n_classes=2)
