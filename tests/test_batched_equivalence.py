"""Differential equivalence suite: batched cohort engine vs scalar path.

The contract under test (see ``repro/core/cohort.py``): for every client,
the batched :class:`CohortTrainer` produces deltas and losses that match
the scalar :class:`LocalTrainer` within 1e-8 — in practice bit-for-bit —
across randomized cohorts (varied K, sequence lengths, learning rates,
epochs, batch sizes, seeds, ragged per-client data), and the vectorized
delta-block aggregation paths (FedBuff, SyncFL, DP-clipped) match their
sequential counterparts.  This is what lets the system layer enable
cohort dispatch without changing a single experimental number.
"""

import numpy as np
import pytest

from repro.core.client_trainer import LocalTrainer
from repro.core.cohort import CohortRequest, CohortTrainer
from repro.core.dp import DPConfig, DPFedBuffAggregator
from repro.core.fedbuff import FedBuffAggregator
from repro.core.server_opt import FedAdam
from repro.core.state import GlobalModelState
from repro.core.syncfl import SyncRoundAggregator
from repro.core.types import TaskConfig, TrainingMode, TrainingResult
from repro.data.federated import FederatedDataset
from repro.data.synthetic_text import CorpusSpec, TopicMarkovCorpus
from repro.nn import layers
from repro.nn.loss import batched_cross_entropy, cross_entropy
from repro.nn.model import BatchedLSTMLanguageModel, LSTMLanguageModel, ModelConfig
from repro.nn.optim import SGD, CohortSGD

ATOL = 1e-8


def make_federation(vocab=24, seq_len=10, seed=0):
    corpus = TopicMarkovCorpus(CorpusSpec(vocab_size=vocab, seq_len=seq_len), seed=seed)
    return FederatedDataset(corpus)


def cohort_and_scalar(cfg, fed, base, *, K, lr, batch_size, epochs, seed, rng,
                      spread=0.01):
    """Train one randomized cohort both ways; return paired results."""
    scalar = LocalTrainer(cfg, lr=lr, batch_size=batch_size, epochs=epochs, seed=seed)
    batched = CohortTrainer(cfg, lr=lr, batch_size=batch_size, epochs=epochs, seed=seed)
    requests, refs = [], []
    for i in range(K):
        n = int(rng.integers(3, 60))
        ds = fed.client_dataset(int(rng.integers(10_000)), n)
        init = (base + rng.standard_normal(base.size).astype(np.float32) * spread)
        participation = int(rng.integers(0, 3))
        version = int(rng.integers(0, 5))
        requests.append(CohortRequest(init, ds, version, participation))
        refs.append(scalar.train(init, ds, version, participation))
    return refs, batched.train_cohort(requests)


class TestCohortTrainerEquivalence:
    @pytest.mark.parametrize("K", [1, 2, 5, 16])
    def test_randomized_cohorts_match_scalar(self, K):
        cfg = ModelConfig(vocab_size=24, embed_dim=8, hidden_dim=16)
        fed = make_federation()
        base = LSTMLanguageModel(cfg, seed=1).get_flat()
        rng = np.random.default_rng(K)
        refs, outs = cohort_and_scalar(
            cfg, fed, base, K=K, lr=0.7, batch_size=8, epochs=1, seed=3, rng=rng
        )
        for ref, out in zip(refs, outs):
            assert out.client_id == ref.client_id
            assert out.num_examples == ref.num_examples
            assert out.initial_version == ref.initial_version
            np.testing.assert_allclose(out.delta, ref.delta, rtol=0, atol=ATOL)
            assert abs(out.train_loss - ref.train_loss) <= ATOL

    @pytest.mark.parametrize("seed,lr,epochs,batch_size,seq_len", [
        (0, 0.1, 1, 8, 6),
        (1, 1.5, 2, 4, 10),
        (2, 0.5, 3, 16, 12),
    ])
    def test_hyperparameter_sweep(self, seed, lr, epochs, batch_size, seq_len):
        cfg = ModelConfig(vocab_size=20, embed_dim=6, hidden_dim=12)
        fed = make_federation(vocab=20, seq_len=seq_len, seed=seed)
        base = LSTMLanguageModel(cfg, seed=seed).get_flat()
        rng = np.random.default_rng(seed + 100)
        refs, outs = cohort_and_scalar(
            cfg, fed, base, K=7, lr=lr, batch_size=batch_size, epochs=epochs,
            seed=seed, rng=rng,
        )
        for ref, out in zip(refs, outs):
            np.testing.assert_allclose(out.delta, ref.delta, rtol=0, atol=ATOL)
            assert abs(out.train_loss - ref.train_loss) <= ATOL

    def test_unclipped_path(self):
        cfg = ModelConfig(vocab_size=16, embed_dim=6, hidden_dim=8)
        fed = make_federation(vocab=16, seq_len=8)
        base = LSTMLanguageModel(cfg, seed=2).get_flat()
        scalar = LocalTrainer(cfg, lr=0.3, batch_size=8, clip_norm=None)
        batched = CohortTrainer(cfg, lr=0.3, batch_size=8, clip_norm=None)
        requests, refs = [], []
        for cid in range(5):
            ds = fed.client_dataset(cid, 12 + cid)
            requests.append(CohortRequest(base, ds, 0, 0))
            refs.append(scalar.train(base, ds, 0, 0))
        for ref, out in zip(refs, batched.train_cohort(requests)):
            np.testing.assert_allclose(out.delta, ref.delta, rtol=0, atol=ATOL)

    def test_empty_cohort(self):
        cfg = ModelConfig(vocab_size=16, embed_dim=6, hidden_dim=8)
        assert CohortTrainer(cfg).train_cohort([]) == []

    def test_ragged_single_row_batches(self):
        # B=1 tail batches exercise the GEMV/GEMM kernel boundary that
        # naive row padding gets wrong by one ulp.
        cfg = ModelConfig(vocab_size=16, embed_dim=6, hidden_dim=8)
        fed = make_federation(vocab=16, seq_len=8)
        base = LSTMLanguageModel(cfg, seed=2).get_flat()
        scalar = LocalTrainer(cfg, lr=0.9, batch_size=8)
        batched = CohortTrainer(cfg, lr=0.9, batch_size=8)
        sizes = [2, 13, 3, 27, 2]  # n_train of 1, 9, 2, 18, 1 -> B=1 tails
        requests, refs = [], []
        for cid, n in enumerate(sizes):
            ds = fed.client_dataset(100 + cid, n)
            requests.append(CohortRequest(base, ds, 0, 0))
            refs.append(scalar.train(base, ds, 0, 0))
        for ref, out in zip(refs, batched.train_cohort(requests)):
            np.testing.assert_allclose(out.delta, ref.delta, rtol=0, atol=ATOL)
            assert abs(out.train_loss - ref.train_loss) <= ATOL


class TestBatchedKernels:
    def setup_method(self):
        self.rng = np.random.default_rng(0)

    def test_batched_model_matches_scalar_rows(self):
        cfg = ModelConfig(vocab_size=18, embed_dim=6, hidden_dim=10, num_layers=2)
        K, B, T = 4, 5, 7
        stack = np.stack([
            LSTMLanguageModel(cfg, seed=s).get_flat() for s in range(K)
        ])
        tokens = self.rng.integers(0, 18, size=(K, B, T))
        targets = self.rng.integers(0, 18, size=(K, B, T))
        bm = BatchedLSTMLanguageModel(cfg, K)
        bm.set_flat_stack(stack)
        losses, grads = bm.loss_and_grad(tokens, targets)
        for k in range(K):
            m = LSTMLanguageModel(cfg, seed=0)
            m.set_flat(stack[k])
            loss, grad = m.loss_and_grad(tokens[k], targets[k])
            assert abs(loss - float(losses[k])) <= ATOL
            np.testing.assert_allclose(grads[k], grad, rtol=0, atol=ATOL)

    def test_batched_model_ragged_valid_rows(self):
        cfg = ModelConfig(vocab_size=18, embed_dim=6, hidden_dim=10)
        K, B, T = 3, 6, 5
        stack = np.stack([
            LSTMLanguageModel(cfg, seed=s).get_flat() for s in range(K)
        ])
        valid = np.array([1, 4, 6])
        tokens = np.zeros((K, B, T), dtype=np.int64)
        targets = np.zeros_like(tokens)
        per_client = []
        for k in range(K):
            b = int(valid[k])
            tk = self.rng.integers(0, 18, size=(b, T))
            tg = self.rng.integers(0, 18, size=(b, T))
            tokens[k, :b], targets[k, :b] = tk, tg
            per_client.append((tk, tg))
        bm = BatchedLSTMLanguageModel(cfg, K)
        bm.set_flat_stack(stack)
        losses, grads = bm.loss_and_grad(tokens, targets, valid_rows=valid)
        for k, (tk, tg) in enumerate(per_client):
            m = LSTMLanguageModel(cfg, seed=0)
            m.set_flat(stack[k])
            loss, grad = m.loss_and_grad(tk, tg)
            assert abs(loss - float(losses[k])) <= ATOL
            np.testing.assert_allclose(grads[k], grad, rtol=0, atol=ATOL)

    def test_batched_lstm_kernels_per_slice(self):
        K, B, T, D, H = 3, 4, 6, 5, 8
        params = {
            "w_x": self.rng.standard_normal((K, D, 4 * H)).astype(np.float32),
            "w_h": self.rng.standard_normal((K, H, 4 * H)).astype(np.float32),
            "bias": self.rng.standard_normal((K, 4 * H)).astype(np.float32),
        }
        x = self.rng.standard_normal((K, B, T, D)).astype(np.float32)
        d_hs = self.rng.standard_normal((K, B, T, H)).astype(np.float32)
        hs, cache = layers.batched_lstm_forward(params, x)
        d_x, grads = layers.batched_lstm_backward(cache, d_hs)
        for k in range(K):
            pk = {n: params[n][k] for n in params}
            hk, ck = layers.lstm_forward(pk, x[k])
            np.testing.assert_allclose(hs[k], hk, rtol=0, atol=ATOL)
            dxk, gk = layers.lstm_backward(ck, d_hs[k])
            np.testing.assert_allclose(d_x[k], dxk, rtol=0, atol=ATOL)
            for name in gk:
                np.testing.assert_allclose(grads[name][k], gk[name], rtol=0, atol=ATOL)

    def test_batched_cross_entropy_per_slice(self):
        K, B, T, V = 4, 3, 5, 12
        logits = (self.rng.standard_normal((K, B, T, V)) * 3).astype(np.float32)
        targets = self.rng.integers(0, V, size=(K, B, T))
        losses, d = batched_cross_entropy(logits, targets)
        for k in range(K):
            loss, dk = cross_entropy(logits[k], targets[k])
            assert abs(loss - float(losses[k])) <= ATOL
            np.testing.assert_allclose(d[k], dk, rtol=0, atol=ATOL)

    def test_cohort_sgd_matches_scalar_rows(self):
        K, P = 5, 40
        params = self.rng.standard_normal((K, P)).astype(np.float32)
        # Large grads so some rows clip and others do not.
        grads = (self.rng.standard_normal((K, P)) *
                 self.rng.choice([0.1, 10.0], size=(K, 1))).astype(np.float32)
        cohort_opt = CohortSGD(lr=0.4, clip_norm=2.0)
        stepped = cohort_opt.step(params, grads)
        for k in range(K):
            opt = SGD(lr=0.4, clip_norm=2.0)
            np.testing.assert_allclose(
                stepped[k], opt.step(params[k], grads[k]), rtol=0, atol=ATOL
            )

    def test_cohort_sgd_momentum(self):
        K, P = 3, 20
        params = self.rng.standard_normal((K, P)).astype(np.float32)
        cohort_opt = CohortSGD(lr=0.2, momentum=0.9)
        scalar_opts = [SGD(lr=0.2, momentum=0.9) for _ in range(K)]
        scalar_params = [params[k].copy() for k in range(K)]
        for _ in range(4):
            grads = self.rng.standard_normal((K, P)).astype(np.float32)
            params = cohort_opt.step(params, grads)
            for k in range(K):
                scalar_params[k] = scalar_opts[k].step(scalar_params[k], grads[k])
        for k in range(K):
            np.testing.assert_allclose(params[k], scalar_params[k], rtol=0, atol=ATOL)

    def test_cohort_sgd_rejects_bad_shapes(self):
        opt = CohortSGD(lr=0.1)
        with pytest.raises(ValueError):
            opt.step(np.zeros((2, 3), np.float32), np.zeros((3, 2), np.float32))
        with pytest.raises(ValueError):
            opt.step(np.zeros(3, np.float32), np.zeros(3, np.float32))


def make_result(rng, cid, P, version=0, scale=1.0, n=None):
    return TrainingResult(
        client_id=cid,
        delta=(rng.standard_normal(P) * scale).astype(np.float32),
        num_examples=n if n is not None else int(rng.integers(1, 50)),
        train_loss=float(rng.random()),
        initial_version=version,
    )


def fresh_state(P, seed=0):
    rng = np.random.default_rng(seed)
    return GlobalModelState(rng.standard_normal(P).astype(np.float32), FedAdam(lr=0.1))


class TestVectorizedDeltaBlocks:
    P = 32

    @pytest.mark.parametrize("weighting", ["linear", "log", "none"])
    def test_fedbuff_block_matches_sequential(self, weighting):
        rng = np.random.default_rng(3)
        results = []
        seq = FedBuffAggregator(fresh_state(self.P), goal=4,
                                example_weighting=weighting)
        blk = FedBuffAggregator(fresh_state(self.P), goal=4,
                                example_weighting=weighting)
        for cid in range(11):
            r = make_result(rng, cid, self.P)
            results.append(r)
        for agg in (seq, blk):
            for r in results:
                agg.register_download(r.client_id)
        seq_out = [seq.receive_update(r) for r in results]
        blk_out = blk.receive_update_block(results)

        assert seq.version == blk.version
        assert seq.updates_received == blk.updates_received
        assert len(seq.step_history) == len(blk.step_history) == 2
        for (u1, s1), (u2, s2) in zip(seq_out, blk_out):
            assert u1.weight == pytest.approx(u2.weight, abs=1e-12)
            assert (s1 is None) == (s2 is None)
        np.testing.assert_allclose(
            seq.state.current(), blk.state.current(), rtol=0, atol=ATOL
        )
        np.testing.assert_allclose(seq._buffer, blk._buffer, rtol=0, atol=1e-9)

    def test_fedbuff_block_staleness_across_steps(self):
        # Updates later in the block must see the version bumped by the
        # server step a mid-block chunk triggered.
        rng = np.random.default_rng(4)
        seq = FedBuffAggregator(fresh_state(self.P), goal=2)
        blk = FedBuffAggregator(fresh_state(self.P), goal=2)
        results = []
        for cid in range(5):
            results.append(make_result(rng, cid, self.P))
        for agg in (seq, blk):
            for r in results:
                agg.register_download(r.client_id)
        seq_out = [seq.receive_update(r) for r in results]
        blk_out = blk.receive_update_block(results)
        for (u1, _), (u2, _) in zip(seq_out, blk_out):
            assert u1.staleness == u2.staleness
            assert u1.arrival_version == u2.arrival_version

    def test_fedbuff_block_rejects_unknown_client(self):
        rng = np.random.default_rng(5)
        agg = FedBuffAggregator(fresh_state(self.P), goal=10)
        known = make_result(rng, 1, self.P)
        agg.register_download(1)
        with pytest.raises(KeyError):
            agg.receive_update_block([known, make_result(rng, 99, self.P)])
        # The known client's update was admitted before the failure,
        # exactly as the sequential path would have left it.
        assert agg.buffered_count == 1

    def test_syncfl_block_matches_sequential(self):
        # Five clients join round 0; the round closes after 3 updates,
        # aborting the stragglers — whose late uploads then raise KeyError
        # identically on the sequential and the block path.
        rng = np.random.default_rng(6)
        seq = SyncRoundAggregator(fresh_state(self.P), goal=3)
        blk = SyncRoundAggregator(fresh_state(self.P), goal=3)
        results = [make_result(rng, cid, self.P) for cid in range(5)]
        for agg in (seq, blk):
            for r in results:
                agg.register_download(r.client_id)
        for r in results[:3]:
            seq.receive_update(r)
        with pytest.raises(KeyError):
            seq.receive_update(results[3])
        with pytest.raises(KeyError):
            blk.receive_update_block(results)
        assert seq.version == blk.version == 1
        assert seq.updates_discarded == blk.updates_discarded
        assert seq.updates_received == blk.updates_received == 3
        np.testing.assert_allclose(
            seq.state.current(), blk.state.current(), rtol=0, atol=ATOL
        )

    def test_syncfl_block_simple_round(self):
        rng = np.random.default_rng(7)
        seq = SyncRoundAggregator(fresh_state(self.P), goal=3)
        blk = SyncRoundAggregator(fresh_state(self.P), goal=3)
        results = [make_result(rng, cid, self.P) for cid in range(3)]
        for agg in (seq, blk):
            for r in results:
                agg.register_download(r.client_id)
        for r in results:
            seq.receive_update(r)
        out = blk.receive_update_block(results)
        assert out[-1][1] is not None and out[-1][1].version == 1
        assert seq.version == blk.version == 1
        np.testing.assert_allclose(
            seq.state.current(), blk.state.current(), rtol=0, atol=ATOL
        )

    def test_dp_block_clips_and_matches_sequential(self):
        rng = np.random.default_rng(8)
        dp = DPConfig(clip_norm=0.5, noise_multiplier=0.8)
        seq = DPFedBuffAggregator(fresh_state(self.P), goal=3, dp=dp, seed=9)
        blk = DPFedBuffAggregator(fresh_state(self.P), goal=3, dp=dp, seed=9)
        results = [make_result(rng, cid, self.P, scale=5.0) for cid in range(7)]
        for agg in (seq, blk):
            for r in results:
                agg.register_download(r.client_id)
        seq_out = [seq.receive_update(r) for r in results]
        blk_out = blk.receive_update_block(results)
        assert seq.accountant.releases == blk.accountant.releases == 2
        assert seq.epsilon_spent == pytest.approx(blk.epsilon_spent)
        np.testing.assert_allclose(
            seq.state.current(), blk.state.current(), rtol=0, atol=ATOL
        )
        # Clipping really happened in the block path: every recorded
        # update's delta norm is within the bound.
        for update, _ in blk_out:
            assert float(np.linalg.norm(update.result.delta)) <= dp.clip_norm + 1e-6
        for (u1, _), (u2, _) in zip(seq_out, blk_out):
            np.testing.assert_allclose(u1.result.delta, u2.result.delta,
                                       rtol=0, atol=ATOL)


class TestEndToEndCohortDispatch:
    """Full-simulation differential test: cohort dispatch vs scalar."""

    @staticmethod
    def _run(mode, cohort_batch_size, max_steps=25):
        from repro.core.server_opt import FedAdam as _FedAdam
        from repro.harness.runner import make_population
        from repro.system.adapters import RealTrainingAdapter
        from repro.system.orchestrator import FederatedSimulation, SystemConfig

        model_cfg = ModelConfig(vocab_size=24, embed_dim=8, hidden_dim=16)
        corpus = TopicMarkovCorpus(
            CorpusSpec(vocab_size=24, seq_len=10, volume_topic_coupling=0.8,
                       reference_examples=20.0),
            seed=0,
        )
        pop = make_population(300, seed=0, mean_examples=20.0, max_examples=80)
        dataset = FederatedDataset(corpus)
        model = LSTMLanguageModel(model_cfg, seed=0)
        state = GlobalModelState(model.get_flat(), _FedAdam(lr=0.05))
        trainer = LocalTrainer(model_cfg, lr=1.0, batch_size=8, seed=0)
        ids = list(range(24))
        adapter = RealTrainingAdapter(
            trainer, dataset, state, eval_clients=ids,
            eval_examples=[pop.profile(i).n_examples for i in ids], eval_every=5,
        )
        cfg = TaskConfig(
            name="t", mode=mode, concurrency=24, aggregation_goal=6,
            over_selection=0.3 if mode is TrainingMode.SYNC else 0.0,
            model_size_bytes=200_000,
        )
        fs = FederatedSimulation(
            [(cfg, adapter)], pop, seed=0,
            system=SystemConfig(cohort_batch_size=cohort_batch_size),
        )
        res = fs.run(t_end=3e5, max_server_steps=max_steps)
        return res, fs

    @pytest.mark.parametrize("mode", [TrainingMode.ASYNC, TrainingMode.SYNC])
    def test_traces_identical(self, mode):
        res1, _ = self._run(mode, 1)
        res16, fs16 = self._run(mode, 16)

        t1, l1 = res1.trace.loss_curve("t")
        t16, l16 = res16.trace.loss_curve("t")
        np.testing.assert_array_equal(t1, t16)
        np.testing.assert_allclose(l1, l16, rtol=0, atol=ATOL)

        parts1 = [(p.device_id, p.start_time, p.end_time, p.outcome, p.staleness)
                  for p in res1.trace.participations]
        parts16 = [(p.device_id, p.start_time, p.end_time, p.outcome, p.staleness)
                   for p in res16.trace.participations]
        assert parts1 == parts16

        dispatcher = fs16.task_runtimes["t"].cohort
        assert dispatcher is not None
        assert dispatcher.batches_run > 0
        assert dispatcher.trainings_run >= dispatcher.batches_run
        # Batching actually grouped clients (not all singleton batches).
        assert dispatcher.trainings_run > dispatcher.batches_run

    def test_scalar_dispatch_has_no_dispatcher(self):
        _, fs = self._run(TrainingMode.ASYNC, 1, max_steps=2)
        assert fs.task_runtimes["t"].cohort is None


class TestCohortDispatchSafety:
    def test_stale_queued_upload_from_replaced_device_is_ignored(self):
        """A queued upload of an aborted session must not resolve after the
        device was re-selected under a NEW session with the same id — the
        discarded PendingTraining is gone and draining it would crash."""
        from repro.sim import MetricsTrace, Outcome, Simulator
        from repro.sim.network import NetworkModel
        from repro.sim.population import DevicePopulation, PopulationConfig
        from repro.system.adapters import SurrogateAdapter
        from repro.system.aggregator import AggregatorNode, FLTaskRuntime
        from repro.system.client_runtime import ClientSession, CohortDispatcher
        from repro.utils import EventLog

        sim, log, trace = Simulator(), EventLog(), MetricsTrace()
        cfg = TaskConfig(name="t", mode=TrainingMode.ASYNC, concurrency=4,
                         aggregation_goal=2, model_size_bytes=1000)
        adapter = SurrogateAdapter(seed=0)
        dispatcher = CohortDispatcher(adapter, max_cohort=4)
        rt = FLTaskRuntime(cfg, adapter, sim, trace, log, cohort=dispatcher)
        AggregatorNode(0, sim, log).host(rt)
        pop = DevicePopulation(PopulationConfig(n_devices=2), seed=0)

        def make_session(participation):
            session = ClientSession(
                profile=pop.profile(0), task_rt=rt, sim=sim,
                network=NetworkModel(), population=pop, trace=trace,
                participation=participation, failure_detection_s=5.0,
                on_end=rt.session_ended,
            )
            rt.pending_assignments += 1
            rt.attach_session(session)
            return session

        old = make_session(0)
        rt.core.register_download(0)
        pending = dispatcher.submit(old.profile, None, 0, 0)
        old._pending = pending
        old.abort(Outcome.ABORTED)  # discards the deferred training
        assert len(dispatcher) == 0

        new = make_session(1)  # same device, re-selected
        rt.core.register_download(0)
        before = rt.core.updates_received
        rt.process_update(old, pending)  # the stale shard event fires
        assert rt.core.updates_received == before
        assert not new.finished
        assert rt.sessions[0] is new
