"""Tests for the structured event log."""

from repro.utils import EventLog


class TestEventLog:
    def test_emit_and_len(self):
        log = EventLog()
        log.emit(1.0, "coordinator", "client_assigned", client=3)
        assert len(log) == 1

    def test_of_kind_filters(self):
        log = EventLog()
        log.emit(1.0, "a", "x")
        log.emit(2.0, "a", "y")
        log.emit(3.0, "b", "x")
        assert [r.time for r in log.of_kind("x")] == [1.0, 3.0]

    def test_from_component_filters(self):
        log = EventLog()
        log.emit(1.0, "aggregator:0", "k")
        log.emit(2.0, "aggregator:1", "k")
        assert len(log.from_component("aggregator:1")) == 1

    def test_where_predicate(self):
        log = EventLog()
        for t in range(5):
            log.emit(float(t), "c", "tick")
        assert len(log.where(lambda r: r.time >= 3)) == 2

    def test_count(self):
        log = EventLog()
        log.emit(0.0, "c", "a")
        log.emit(0.0, "c", "a")
        assert log.count("a") == 2 and log.count("b") == 0

    def test_detail_payload(self):
        log = EventLog()
        log.emit(0.0, "c", "assign", task="lm", client=7)
        rec = next(iter(log))
        assert rec.detail == {"task": "lm", "client": 7}

    def test_clear(self):
        log = EventLog()
        log.emit(0.0, "c", "a")
        log.clear()
        assert len(log) == 0
