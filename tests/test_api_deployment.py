"""Deployment façade: spec-built deployments are trace-identical to the
hand-wired pre-redesign construction, and the plane registry behaves.

The equivalence contract of the api_redesign PR: for every deployment
shape the repo runs (async, sync, sharded, secure, mixed multi-tenant),
``Deployment.from_spec(spec)`` must produce *byte-identical* traces —
participation records, server steps, and event-log lines — to wiring the
same ``TaskConfig`` + adapter + ``SystemConfig`` into
``FederatedSimulation`` by hand, and the deprecated ``build_async`` /
``build_sync`` shims must match their scenario equivalents exactly.
"""

import pytest

from repro.api import (
    Deployment,
    ExecutionSpec,
    PlaneSpec,
    PopulationSpec,
    ScenarioSpec,
    SpecError,
    TaskSpec,
    build_population,
)
from repro.core.surrogate import SurrogateParams
from repro.core.types import TaskConfig, TrainingMode
from repro.harness.runner import async_scenario, build_async, build_sync, sync_scenario
from repro.harness.scenario import run_scenario
from repro.sim.population import DevicePopulation, PopulationConfig
from repro.system import planes
from repro.system.adapters import SurrogateAdapter
from repro.system.aggregator import FLTaskRuntime
from repro.system.orchestrator import FederatedSimulation, SystemConfig
from repro.system.sharding import ShardedFLTaskRuntime


def trace_fingerprint(result):
    """Everything observable about a finished run, exactly."""
    return (
        result.duration_s,
        result.trace.participations,
        result.trace.server_steps,
        [(r.time, r.component, r.kind, r.detail) for r in result.log],
    )


def make_pop(n=800, seed=0, **kw):
    return DevicePopulation(PopulationConfig(n_devices=n, **kw), seed=seed)


class TestTraceEquivalence:
    """Spec-built == hand-wired, byte for byte."""

    def run_both(self, spec, tasks, system, seed, t_end, **run_kw):
        """Run the spec path and the hand-wired path on fresh populations."""
        spec_res = Deployment.from_spec(spec).run(t_end=t_end, **run_kw)
        pop = DevicePopulation(
            spec.population.population_config(), seed=spec.population_seed()
        )
        hand = FederatedSimulation(tasks, pop, system=system, seed=seed)
        hand_res = hand.run(t_end=t_end, **run_kw)
        return spec_res, hand_res

    def test_async_surrogate(self):
        spec = ScenarioSpec(
            population=PopulationSpec(n_devices=800, seed=0),
            tasks=(TaskSpec(name="async", mode="async", concurrency=16,
                            aggregation_goal=4, model_size_bytes=1_000_000),),
            execution=ExecutionSpec(seed=0),
        )
        cfg = TaskConfig(name="async", mode=TrainingMode.ASYNC, concurrency=16,
                         aggregation_goal=4, model_size_bytes=1_000_000)
        spec_res, hand_res = self.run_both(
            spec, [(cfg, SurrogateAdapter(seed=0))], None, 0, 1800.0
        )
        assert trace_fingerprint(spec_res) == trace_fingerprint(hand_res)

    def test_sync_with_over_selection(self):
        spec = ScenarioSpec(
            population=PopulationSpec(n_devices=800, seed=1),
            tasks=(TaskSpec(name="sync", mode="sync", concurrency=13,
                            aggregation_goal=10, over_selection=0.3,
                            model_size_bytes=1_000_000),),
            execution=ExecutionSpec(seed=1),
        )
        cfg = TaskConfig(name="sync", mode=TrainingMode.SYNC, concurrency=13,
                         aggregation_goal=10, over_selection=0.3,
                         model_size_bytes=1_000_000)
        spec_res, hand_res = self.run_both(
            spec, [(cfg, SurrogateAdapter(seed=1))], None, 1, 1800.0
        )
        assert trace_fingerprint(spec_res) == trace_fingerprint(hand_res)

    def test_sharded_plane(self):
        spec = ScenarioSpec(
            population=PopulationSpec(n_devices=400, seed=0),
            tasks=(TaskSpec(name="t", mode="async", concurrency=24,
                            aggregation_goal=6, model_size_bytes=100_000),),
            plane=PlaneSpec(name="sharded", num_shards=4, shard_routing="hash"),
            system={"n_aggregators": 3},
            execution=ExecutionSpec(seed=0),
        )
        cfg = TaskConfig(name="t", mode=TrainingMode.ASYNC, concurrency=24,
                         aggregation_goal=6, model_size_bytes=100_000)
        system = SystemConfig(n_aggregators=3, num_shards=4, shard_routing="hash")
        spec_res, hand_res = self.run_both(
            spec, [(cfg, SurrogateAdapter(seed=0))], system, 0, 2000.0
        )
        assert trace_fingerprint(spec_res) == trace_fingerprint(hand_res)
        assert isinstance(
            Deployment.from_spec(spec).build().task_runtimes["t"],
            ShardedFLTaskRuntime,
        )

    def test_secure_plane(self):
        spec = ScenarioSpec(
            population=PopulationSpec(n_devices=500, seed=0),
            tasks=(TaskSpec(name="secure", mode="async", concurrency=12,
                            aggregation_goal=4, model_size_bytes=100_000),),
            plane=PlaneSpec(name="secure"),
            execution=ExecutionSpec(seed=0),
        )
        cfg = TaskConfig(name="secure", mode=TrainingMode.ASYNC, concurrency=12,
                         aggregation_goal=4, secure_aggregation=True,
                         model_size_bytes=100_000)
        spec_res, hand_res = self.run_both(
            spec, [(cfg, SurrogateAdapter(seed=0))], None, 0, 1200.0,
            max_server_steps=8,
        )
        assert trace_fingerprint(spec_res) == trace_fingerprint(hand_res)

    def test_multi_tenant_mixed_modes(self):
        spec = ScenarioSpec(
            population=PopulationSpec(n_devices=1000, seed=2),
            tasks=(
                TaskSpec(name="a", mode="async", concurrency=12,
                         aggregation_goal=4, model_size_bytes=1_000_000),
                TaskSpec(name="s", mode="sync", concurrency=13,
                         aggregation_goal=10, over_selection=0.3,
                         model_size_bytes=1_000_000),
            ),
            execution=ExecutionSpec(seed=2),
        )
        tasks = [
            (TaskConfig(name="a", mode=TrainingMode.ASYNC, concurrency=12,
                        aggregation_goal=4, model_size_bytes=1_000_000),
             SurrogateAdapter(seed=2)),
            (TaskConfig(name="s", mode=TrainingMode.SYNC, concurrency=13,
                        aggregation_goal=10, over_selection=0.3,
                        model_size_bytes=1_000_000),
             SurrogateAdapter(seed=2)),
        ]
        spec_res, hand_res = self.run_both(spec, tasks, None, 2, 1800.0)
        assert trace_fingerprint(spec_res) == trace_fingerprint(hand_res)


class TestShimEquivalence:
    """The deprecated helpers are thin shims over the same spec path."""

    def test_build_async_matches_scenario(self):
        pop = make_pop(800, seed=0)
        params = SurrogateParams(critical_goal=10.0)
        shim_res = build_async(16, 4, pop, seed=0, surrogate=params).run(t_end=1800.0)
        spec = async_scenario(16, 4, make_pop(800, seed=0), seed=0, surrogate=params)
        spec_res = Deployment.from_spec(spec).run(t_end=1800.0)
        assert trace_fingerprint(shim_res) == trace_fingerprint(spec_res)

    def test_build_sync_matches_scenario(self):
        pop = make_pop(800, seed=0)
        shim_res = build_sync(10, pop, over_selection=0.3, seed=0).run(t_end=1800.0)
        spec = sync_scenario(10, make_pop(800, seed=0), over_selection=0.3, seed=0)
        spec_res = Deployment.from_spec(spec).run(t_end=1800.0)
        assert trace_fingerprint(shim_res) == trace_fingerprint(spec_res)

    def test_build_async_carries_system_config(self):
        pop = make_pop(400, seed=0)
        system = SystemConfig(n_aggregators=3, num_shards=2,
                              heartbeat_interval_s=5.0)
        sim = build_async(16, 4, pop, seed=0, system=system)
        assert isinstance(sim.task_runtimes["async"], ShardedFLTaskRuntime)
        assert sim.system.n_aggregators == 3
        assert sim.system.heartbeat_interval_s == 5.0

    def test_build_async_keeps_shards_of_pinned_sharded_plane(self):
        # A SystemConfig that pins the sharded plane explicitly must not
        # have its shard count silently dropped by the shim.
        pop = make_pop(400, seed=0)
        system = SystemConfig(plane="sharded", num_shards=4)
        sim = build_async(16, 4, pop, seed=0, system=system)
        assert sim.task_runtimes["async"].core.num_shards == 4

    def test_build_async_rejects_unrepresentable_custom_plane_shards(self):
        planes.register_plane(type("P", (), {"name": "custom-p", "build": None})())
        try:
            pop = make_pop(100, seed=0)
            system = SystemConfig(plane="custom-p", num_shards=4)
            with pytest.raises(ValueError, match="cannot express"):
                build_async(8, 4, pop, seed=0, system=system)
        finally:
            planes._PLANES._entries.pop("custom-p")


class TestPlaneFallback:
    """num_shards > 1 with an ineligible task logs a structured event."""

    def test_sync_task_falls_back_with_event(self):
        pop = make_pop(200, seed=0)
        cfg = TaskConfig(name="s", mode=TrainingMode.SYNC, concurrency=13,
                         aggregation_goal=10, model_size_bytes=1000)
        fs = FederatedSimulation(
            [(cfg, SurrogateAdapter(seed=0))], pop,
            system=SystemConfig(num_shards=4), seed=0,
        )
        assert type(fs.task_runtimes["s"]) is FLTaskRuntime
        [event] = fs.log.of_kind("plane_fallback")
        assert event.detail["task"] == "s"
        assert event.detail["requested"] == "sharded"
        assert event.detail["chosen"] == "single"
        assert "ASYNC" in event.detail["reason"]

    def test_secure_task_shards_hierarchically_without_fallback(self):
        from repro.system.secure_sharding import SecureShardedFLTaskRuntime

        pop = make_pop(200, seed=0)
        cfg = TaskConfig(name="sec", mode=TrainingMode.ASYNC, concurrency=12,
                         aggregation_goal=4, secure_aggregation=True,
                         model_size_bytes=1000)
        fs = FederatedSimulation(
            [(cfg, SurrogateAdapter(seed=0))], pop,
            system=SystemConfig(num_shards=4), seed=0,
        )
        rt = fs.task_runtimes["sec"]
        assert type(rt) is SecureShardedFLTaskRuntime
        assert rt.core.num_shards == 4
        assert fs.log.count("plane_fallback") == 0

    def test_eligible_tasks_log_nothing(self):
        pop = make_pop(200, seed=0)
        cfg = TaskConfig(name="a", mode=TrainingMode.ASYNC, concurrency=12,
                         aggregation_goal=4, model_size_bytes=1000)
        fs = FederatedSimulation(
            [(cfg, SurrogateAdapter(seed=0))], pop,
            system=SystemConfig(num_shards=2), seed=0,
        )
        assert fs.log.count("plane_fallback") == 0


class TestPlaneRegistry:
    def test_builtin_planes_registered(self):
        assert {"single", "sharded", "secure", "secure_sharded"} <= set(
            planes.plane_names()
        )

    def test_unknown_plane_lookup_lists_known(self):
        with pytest.raises(KeyError, match="single"):
            planes.get_plane("warp")

    def test_custom_plane_plugs_in_without_orchestrator_edits(self):
        class RecordingPlane:
            name = "recording"

            def __init__(self):
                self.built = []

            def build(self, ctx):
                self.built.append(ctx.config.name)
                return FLTaskRuntime(
                    ctx.config, ctx.adapter, ctx.sim, ctx.trace, ctx.log,
                    on_slot_free=ctx.on_slot_free, cohort=ctx.cohort,
                )

        factory = RecordingPlane()
        planes.register_plane(factory)
        try:
            pop = make_pop(100, seed=0)
            cfg = TaskConfig(name="t", mode=TrainingMode.ASYNC, concurrency=8,
                             aggregation_goal=4, model_size_bytes=1000)
            fs = FederatedSimulation(
                [(cfg, SurrogateAdapter(seed=0))], pop,
                system=SystemConfig(plane="recording"), seed=0,
            )
            assert factory.built == ["t"]
            assert type(fs.task_runtimes["t"]) is FLTaskRuntime
        finally:
            planes._PLANES._entries.pop("recording")

    def test_custom_routing_plugs_in(self):
        class FirstShardRouting:
            name = "first"

            def route(self, client_id, shards):
                for idx, shard in enumerate(shards):
                    if shard.alive:
                        return idx
                raise RuntimeError("no live shards")

        planes.register_routing("first", FirstShardRouting)
        try:
            spec = ScenarioSpec(
                population=PopulationSpec(n_devices=200, seed=0),
                tasks=(TaskSpec(name="t", mode="async", concurrency=8,
                                aggregation_goal=4, model_size_bytes=1000),),
                plane=PlaneSpec(name="sharded", num_shards=2,
                                shard_routing="first"),
                execution=ExecutionSpec(seed=0, t_end_s=300.0),
            )
            fs = Deployment.from_spec(spec).build()
            assert fs.task_runtimes["t"].core.routing.name == "first"
        finally:
            planes._ROUTINGS._entries.pop("first")

    def test_trainer_registry_names(self):
        assert {"surrogate", "external", "real_lstm"} <= set(planes.trainer_names())


class TestDeploymentBehavior:
    def spec(self, **kw):
        defaults = dict(
            population=PopulationSpec(n_devices=300, seed=0),
            tasks=(TaskSpec(name="t", mode="async", concurrency=8,
                            aggregation_goal=4, model_size_bytes=1000),),
            execution=ExecutionSpec(seed=0, t_end_s=600.0),
        )
        defaults.update(kw)
        return ScenarioSpec(**defaults)

    def test_build_is_idempotent(self):
        dep = Deployment.from_spec(self.spec())
        assert dep.build() is dep.build()
        assert dep.simulation is dep.build()

    def test_run_uses_spec_execution_knobs(self):
        spec = self.spec(execution=ExecutionSpec(seed=0, t_end_s=600.0,
                                                 max_server_steps=3))
        res = Deployment.from_spec(spec).run()
        assert res.stats().server_steps == 3

    def test_run_without_horizon_names_field(self):
        spec = self.spec(execution=ExecutionSpec(seed=0))
        with pytest.raises(SpecError, match=r"execution\.t_end_s"):
            Deployment.from_spec(spec).run()
        # ... but an explicit t_end at run time is fine.
        res = Deployment.from_spec(spec).run(t_end=300.0)
        assert res.duration_s <= 300.0

    def test_external_trainer_requires_adapter(self):
        spec = self.spec(tasks=(TaskSpec(name="t", mode="async", concurrency=8,
                                         aggregation_goal=4,
                                         model_size_bytes=1000,
                                         trainer="external"),))
        with pytest.raises(SpecError, match="external"):
            Deployment.from_spec(spec).build()
        adapter = SurrogateAdapter(seed=0)
        dep = Deployment.from_spec(spec, adapters={"t": adapter})
        assert dep.build().task_runtimes["t"].adapter is adapter
        assert dep.adapter("t") is adapter

    def test_adapter_override_for_unknown_task_rejected(self):
        with pytest.raises(SpecError, match="no such task"):
            Deployment.from_spec(
                self.spec(), adapters={"zzz": SurrogateAdapter(seed=0)}
            )

    def test_adapter_injection_requires_external_trainer(self):
        # Injecting over a declared trainer would make the serialized
        # spec misdescribe what ran.
        with pytest.raises(SpecError, match="external"):
            Deployment.from_spec(
                self.spec(), adapters={"t": SurrogateAdapter(seed=0)}
            )

    def test_adapter_accessor_names_unknown_task(self):
        dep = Deployment.from_spec(self.spec())
        with pytest.raises(SpecError, match="no such task"):
            dep.adapter("typo")

    def test_unknown_trainer_name_lists_registered(self):
        spec = self.spec(tasks=(TaskSpec(name="t", mode="async", concurrency=8,
                                         aggregation_goal=4,
                                         model_size_bytes=1000,
                                         trainer="nonexistent"),))
        with pytest.raises(KeyError, match="surrogate"):
            Deployment.from_spec(spec).build()

    def test_population_reuse_override(self):
        pop = make_pop(300, seed=0)
        dep = Deployment.from_spec(self.spec(), population=pop)
        assert dep.population is pop
        assert dep.build().population is pop

    def test_build_population_helper(self):
        pop = build_population(PopulationSpec(n_devices=77, seed=3))
        assert pop.config.n_devices == 77
        assert pop.seed == 3


class TestScenarioExperiment:
    def test_run_scenario_summary_matches_direct_run(self):
        spec = ScenarioSpec(
            population=PopulationSpec(n_devices=300, seed=0),
            tasks=(TaskSpec(name="t", mode="async", concurrency=8,
                            aggregation_goal=4, model_size_bytes=1000),),
            execution=ExecutionSpec(seed=0, t_end_s=600.0),
        )
        summary = run_scenario(spec)
        direct = Deployment.from_spec(spec).run()
        [task] = summary.tasks
        assert task.server_steps == direct.stats().server_steps
        assert task.aggregated == direct.stats().aggregated
        assert summary.duration_s == direct.duration_s

    def test_run_scenario_seed_and_overrides(self):
        spec = ScenarioSpec(
            population=PopulationSpec(n_devices=300),
            tasks=(TaskSpec(name="t", mode="async", concurrency=8,
                            aggregation_goal=4, model_size_bytes=1000),),
            execution=ExecutionSpec(seed=0, t_end_s=600.0),
        )
        a = run_scenario(spec, seed=0)
        b = run_scenario(spec, seed=1)
        assert a != b  # the seed override actually reaches the run
        c = run_scenario(spec, seed=0, overrides={"tasks.0.concurrency": 16})
        assert c.tasks[0].downloads > a.tasks[0].downloads

    def test_run_scenario_without_seed_honors_spec_seed(self):
        spec = ScenarioSpec(
            population=PopulationSpec(n_devices=300),
            tasks=(TaskSpec(name="t", mode="async", concurrency=8,
                            aggregation_goal=4, model_size_bytes=1000),),
            execution=ExecutionSpec(seed=7, t_end_s=600.0),
        )
        # seed=None (the CLI run path with no --seed) must not clobber
        # the spec's own execution.seed with 0.
        assert run_scenario(spec.to_dict()) == run_scenario(spec, seed=7)
        assert run_scenario(spec.to_dict()) != run_scenario(spec, seed=0)

    def test_scenario_cells_validate_interdependent_grids_atomically(self):
        from repro.harness.sweep import build_scenario_cells

        base = ScenarioSpec(
            population=PopulationSpec(n_devices=300, seed=0),
            tasks=(TaskSpec(name="t", mode="async", concurrency=8,
                            aggregation_goal=4, model_size_bytes=1000),),
            execution=ExecutionSpec(seed=0, t_end_s=600.0),
        )
        # plane.name and plane.num_shards only make sense together; the
        # grid must be judged per cell, not per axis.
        cells = build_scenario_cells(
            base, seeds=[0],
            grid={"plane.name": ["sharded"], "plane.num_shards": [2, 4]},
        )
        assert len(cells) == 2
        # ... and a combination that is invalid in every cell fails up-front.
        with pytest.raises(SpecError):
            build_scenario_cells(
                base, seeds=[0],
                grid={"tasks.0.mode": ["sync"], "plane.name": ["secure"]},
            )

    def test_run_scenario_requires_horizon(self):
        spec = ScenarioSpec(
            population=PopulationSpec(n_devices=100),
            tasks=(TaskSpec(name="t", mode="async", concurrency=8,
                            aggregation_goal=4, model_size_bytes=1000),),
        )
        with pytest.raises(SpecError, match=r"execution\.t_end_s"):
            run_scenario(spec)
