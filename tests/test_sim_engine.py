"""Tests for the discrete-event engine."""

import pytest

from repro.sim import DeferredQueue, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo(self):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: fired.append(n))
        sim.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.5, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [5.5]

    def test_schedule_at_absolute(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(10.0, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [10.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_past_absolute_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run_until_idle()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, lambda: chain(n + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run_until_idle()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        h = sim.schedule(1.0, lambda: fired.append("x"))
        h.cancel()
        sim.run_until_idle()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        h = sim.schedule(1.0, lambda: fired.append("x"))
        sim.run_until_idle()
        h.cancel()
        assert fired == ["x"]

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h.cancel()
        assert sim.pending == 1


class TestRunControl:
    def test_run_until_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        end = sim.run_until(5.0)
        assert fired == [1]
        assert end == 5.0
        assert sim.now == 5.0
        assert sim.pending == 1  # the t=10 event remains queued

    def test_stop_predicate_halts_early(self):
        sim = Simulator()
        fired = []
        for t in range(1, 6):
            sim.schedule(float(t), lambda t=t: fired.append(t))
        sim.run_until(100.0, stop=lambda: len(fired) >= 2)
        assert fired == [1, 2]

    def test_max_events_budget(self):
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run_until(1e9, max_events=50)
        assert count[0] == 50

    def test_run_until_idle_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            sim.run_until_idle(max_events=100)

    def test_events_fired_counter(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule(float(t), lambda: None)
        sim.run_until_idle()
        assert sim.events_fired == 5


class TestEdgeCases:
    def test_run_until_idle_on_already_idle(self):
        sim = Simulator()
        assert sim.run_until_idle() == 0.0
        assert sim.now == 0.0
        assert sim.events_fired == 0
        # Idempotent: calling again after a run changes nothing.
        sim.schedule(2.0, lambda: None)
        sim.run_until_idle()
        assert sim.run_until_idle() == 2.0
        assert sim.events_fired == 1

    def test_same_timestamp_fifo_across_scheduling_styles(self):
        # Relative and absolute scheduling at the same instant still fire
        # in scheduling order (the FIFO tie-break covers both APIs).
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("rel-first"))
        sim.schedule_at(1.0, lambda: fired.append("abs-second"))
        sim.schedule(1.0, lambda: fired.append("rel-third"))
        sim.run_until_idle()
        assert fired == ["rel-first", "abs-second", "rel-third"]

    def test_same_timestamp_fifo_for_events_scheduled_while_firing(self):
        # An event scheduled with zero delay from inside a handler fires
        # at the same timestamp, after already-queued same-time events.
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append("a"),
                                   sim.schedule(0.0, lambda: fired.append("late"))))
        sim.schedule(1.0, lambda: fired.append("b"))
        sim.run_until_idle()
        assert fired == ["a", "b", "late"]

    def test_cancel_before_firing_inside_run_until(self):
        # A cancelled event at the queue head is skipped by run_until's
        # lazy-deletion path without advancing the clock to its time.
        sim = Simulator()
        fired = []
        h = sim.schedule(1.0, lambda: fired.append("cancelled"))
        sim.schedule(2.0, lambda: fired.append("kept"))
        h.cancel()
        end = sim.run_until(5.0)
        assert fired == ["kept"]
        assert end == 5.0
        assert sim.events_fired == 1

    def test_cancel_from_within_event_at_same_time(self):
        # Cancelling a same-timestamp sibling from a handler prevents it
        # from firing even though it was already queued.
        sim = Simulator()
        fired = []
        handles = []
        sim.schedule(1.0, lambda: (fired.append("first"), handles[0].cancel()))
        handles.append(sim.schedule(1.0, lambda: fired.append("second")))
        sim.run_until_idle()
        assert fired == ["first"]

    def test_cancel_after_firing_keeps_counters(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.run_until_idle()
        h.cancel()  # no-op
        assert sim.events_fired == 1
        assert sim.pending == 0

    def test_run_until_max_events_exhaustion_preserves_queue(self):
        sim = Simulator()
        fired = []
        for t in range(6):
            sim.schedule(float(t + 1), lambda t=t: fired.append(t))
        end = sim.run_until(100.0, max_events=3)
        # Stopped at the third event's time, with the rest still queued.
        assert fired == [0, 1, 2]
        assert end == 3.0
        assert sim.now == 3.0
        assert sim.pending == 3
        # Resuming picks up exactly where the budget ran out.
        sim.run_until(100.0)
        assert fired == [0, 1, 2, 3, 4, 5]

    def test_run_until_max_events_counts_only_fired_not_cancelled(self):
        sim = Simulator()
        fired = []
        cancelled = [sim.schedule(0.5, lambda: fired.append("x")) for _ in range(4)]
        for h in cancelled:
            h.cancel()
        for t in range(3):
            sim.schedule(float(t + 1), lambda t=t: fired.append(t))
        sim.run_until(100.0, max_events=2)
        assert fired == [0, 1]  # cancelled events did not consume budget

    def test_run_until_stop_checked_after_each_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(1.0, lambda: fired.append(2))
        end = sim.run_until(10.0, stop=lambda: True)
        assert fired == [1]
        assert end == 1.0  # clock NOT advanced to the horizon on early stop


class TestDeferredQueue:
    def test_fifo_drain_includes_required(self):
        q = DeferredQueue()
        items = [object() for _ in range(5)]
        for item in items:
            q.submit(item)
        batch = q.drain(items[0], limit=3)
        assert batch == items[:3]
        assert len(q) == 2

    def test_required_beyond_limit_replaces_last_slot(self):
        q = DeferredQueue()
        items = [object() for _ in range(5)]
        for item in items:
            q.submit(item)
        batch = q.drain(items[4], limit=2)
        assert batch == [items[0], items[4]]
        assert len(q) == 3  # items 1, 2, 3 remain

    def test_drain_without_limit_takes_everything(self):
        q = DeferredQueue()
        items = [object() for _ in range(4)]
        for item in items:
            q.submit(item)
        assert q.drain(items[2]) == items
        assert len(q) == 0

    def test_discard_removes_only_that_item(self):
        q = DeferredQueue()
        a, b = object(), object()
        q.submit(a)
        q.submit(b)
        assert q.discard(a) is True
        assert q.discard(a) is False  # already gone
        assert q.drain(b) == [b]

    def test_drain_unknown_required_raises(self):
        q = DeferredQueue()
        q.submit(object())
        with pytest.raises(ValueError):
            q.drain(object())

    def test_drain_bad_limit_rejected(self):
        q = DeferredQueue()
        item = object()
        q.submit(item)
        with pytest.raises(ValueError):
            q.drain(item, limit=0)

    def test_identity_not_equality(self):
        # Two equal-but-distinct items are tracked separately.
        q = DeferredQueue()
        a, b = [1], [1]
        q.submit(a)
        q.submit(b)
        q.discard(a)
        assert len(q) == 1
        assert q.drain(b) == [b]


class TestCalendarQueue:
    """Edge cases of the bucketed calendar queue behind the Simulator.

    Exercised purely through the public API: far-future (overflow)
    events, rebuild under load, horizon/bucket-boundary interplay, and
    re-anchoring after long quiet stretches.
    """

    def test_far_future_events_order_correctly(self):
        # Way beyond the initial 64 x 1s wheel: these live in overflow
        # until a rebuild re-centres the wheel on them.
        sim = Simulator()
        fired = []
        for t in (1e9, 5.0, 1e6, 0.5, 1e3):
            sim.schedule_at(t, lambda t=t: fired.append(t))
        sim.run_until_idle()
        assert fired == [0.5, 5.0, 1e3, 1e6, 1e9]

    def test_interleaved_near_and_far_pushes(self):
        # Events scheduled *while running*, repeatedly straddling the
        # wheel horizon, still fire in global (time, seq) order.
        sim = Simulator()
        fired = []

        def hop(n):
            fired.append(sim.now)
            if n < 40:
                sim.schedule(0.1, lambda: hop(n + 1))       # in-wheel
                sim.schedule(500.0 + n, lambda: fired.append(sim.now))

        sim.schedule(0.0, lambda: hop(0))
        sim.run_until_idle()
        assert fired == sorted(fired)

    def test_rebuild_under_load_keeps_exact_order(self):
        # >8 entries/bucket forces a wheel rebuild mid-stream; the
        # (time, seq) total order must survive redistribution, including
        # the FIFO tie-break for duplicate timestamps.
        import random

        rng = random.Random(7)
        sim = Simulator()
        times = [round(rng.uniform(0.0, 300.0), 1) for _ in range(2000)]
        fired = []
        expected = []
        for i, t in enumerate(times):
            sim.schedule_at(t, lambda t=t, i=i: fired.append((t, i)))
            expected.append((t, i))
        sim.run_until_idle()
        assert fired == sorted(expected)

    def test_run_until_exactly_at_event_time_fires_it(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(60.0, lambda: fired.append("at"))
        sim.schedule_at(60.0 + 1e-9, lambda: fired.append("after"))
        sim.run_until(60.0)
        assert fired == ["at"]          # horizon is inclusive
        assert sim.pending == 1
        sim.run_until_idle()
        assert fired == ["at", "after"]

    def test_horizon_stops_between_bucket_boundaries(self):
        # Repeated short horizons that land mid-bucket and exactly on
        # multiples of the tick never skip or re-fire events.
        sim = Simulator()
        fired = []
        for k in range(1, 61):
            sim.schedule_at(k * 10.0, lambda k=k: fired.append(k))
        for horizon in (95.0, 100.0, 155.5, 600.0):
            sim.run_until(horizon)
            assert fired == list(range(1, int(horizon // 10) + 1))
            assert sim.now == horizon

    def test_reanchor_after_long_idle_gap(self):
        # Drain the queue, then schedule years ahead: the empty-queue
        # re-anchor keeps bucket indices small and the event fires.
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run_until_idle()
        fired = []
        sim.schedule_at(3.15e8, lambda: fired.append(sim.now))   # ~10 years
        sim.schedule_at(3.15e8 + 1.0, lambda: fired.append(sim.now))
        sim.run_until_idle()
        assert fired == [3.15e8, 3.15e8 + 1.0]

    def test_cancelled_overflow_entries_drain_cleanly(self):
        sim = Simulator()
        fired = []
        handles = [sim.schedule_at(1e6 + k, lambda: fired.append("x"))
                   for k in range(10)]
        keep = sim.schedule_at(2.0, lambda: fired.append("keep"))
        for h in handles:
            h.cancel()
        assert keep is not None
        sim.run_until_idle()
        assert fired == ["keep"]
        assert sim.pending == 0

    def test_nonfinite_event_time_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_at(float("inf"), lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_at(float("nan"), lambda: None)
        with pytest.raises(ValueError):
            sim.schedule(float("inf"), lambda: None)

    def test_identical_timestamps_en_masse_stay_fifo(self):
        # A degenerate span (every event at one instant) exercises the
        # width fallback in the rebuild path.
        sim = Simulator()
        fired = []
        for i in range(1000):
            sim.schedule_at(42.0, lambda i=i: fired.append(i))
        sim.run_until_idle()
        assert fired == list(range(1000))
