"""Tests for the discrete-event engine."""

import pytest

from repro.sim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo(self):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: fired.append(n))
        sim.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.5, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [5.5]

    def test_schedule_at_absolute(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(10.0, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [10.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_past_absolute_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run_until_idle()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, lambda: chain(n + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run_until_idle()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        h = sim.schedule(1.0, lambda: fired.append("x"))
        h.cancel()
        sim.run_until_idle()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        h = sim.schedule(1.0, lambda: fired.append("x"))
        sim.run_until_idle()
        h.cancel()
        assert fired == ["x"]

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h.cancel()
        assert sim.pending == 1


class TestRunControl:
    def test_run_until_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        end = sim.run_until(5.0)
        assert fired == [1]
        assert end == 5.0
        assert sim.now == 5.0
        assert sim.pending == 1  # the t=10 event remains queued

    def test_stop_predicate_halts_early(self):
        sim = Simulator()
        fired = []
        for t in range(1, 6):
            sim.schedule(float(t), lambda t=t: fired.append(t))
        sim.run_until(100.0, stop=lambda: len(fired) >= 2)
        assert fired == [1, 2]

    def test_max_events_budget(self):
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run_until(1e9, max_events=50)
        assert count[0] == 50

    def test_run_until_idle_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            sim.run_until_idle(max_events=100)

    def test_events_fired_counter(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule(float(t), lambda: None)
        sim.run_until_idle()
        assert sim.events_fired == 5
