"""Unit tests for the observability plane (:mod:`repro.obs`).

Covers the metrics registry (labeled families, overflow folding, the
raw-tuple fast path, the null registry), the span tracer (ring-bounded
retention, orphan detection, idempotent close), the wall-clock phase
profiler, both export formats, and the ``telemetry`` spec section.
"""

import json

import pytest

from repro.api import ScenarioSpec, SpecError, TelemetrySpec
from repro.obs import (
    METRIC_CATALOG,
    NULL_REGISTRY,
    PHASE_CATALOG,
    SPAN_CATALOG,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    PhaseProfiler,
    RunTelemetry,
    SpanTracer,
    events_to_jsonl,
    merged_jsonl,
    spans_to_jsonl,
    to_prometheus,
)
from repro.obs.metrics import OVERFLOW_LABEL
from repro.utils.logging import EventLog


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------

class TestMetricsRegistry:
    def test_counter_accumulates_and_rejects_negative(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", "ops", ("kind",))
        reg.inc("ops_total", ("read",))
        reg.inc("ops_total", ("read",), amount=2)
        assert reg.value("ops_total", ("read",)) == 3.0
        assert reg.value("ops_total", ("write",)) == 0.0  # never touched
        with pytest.raises(ValueError):
            reg.inc("ops_total", ("read",), amount=-1)

    def test_gauge_sets_and_adjusts(self):
        reg = MetricsRegistry()
        reg.gauge("depth", "queue depth")
        reg.set("depth", 7.5)
        assert reg.value("depth") == 7.5
        reg.inc("depth", amount=-2.5)
        assert reg.value("depth") == 5.0

    def test_histogram_buckets_sum_count(self):
        reg = MetricsRegistry()
        reg.histogram("lat", "latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            reg.observe("lat", v)
        hist = reg.get("lat")
        assert hist.count == 4
        assert hist.sum == pytest.approx(55.55)
        assert hist.cumulative() == [1, 2, 3, 4]
        assert hist.quantile(0.5) == 1.0

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))

    def test_boundary_observation_lands_in_le_bucket(self):
        hist = Histogram((1.0, 2.0))
        hist.observe(1.0)  # Prometheus le semantics: 1.0 <= 1.0
        assert hist.bucket_counts[0] == 1

    def test_undeclared_metric_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(KeyError):
            reg.inc("nope_total")

    def test_redeclaration_idempotent_but_incompatible_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "a", ("x",))
        reg.counter("a_total", "a", ("x",))  # same shape: fine
        with pytest.raises(ValueError):
            reg.gauge("a_total")  # kind changed
        with pytest.raises(ValueError):
            reg.counter("a_total", "a", ("y",))  # labels changed
        with pytest.raises(ValueError):
            reg.counter("bad name!")

    def test_wrong_label_arity_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "a", ("x", "y"))
        with pytest.raises(ValueError):
            reg.inc("a_total", ("only-one",))

    def test_cardinality_cap_folds_into_overflow_series(self):
        reg = MetricsRegistry(max_series=2)
        reg.counter("c_total", "c", ("k",))
        for k in ("a", "b", "c", "d", "c"):
            reg.inc("c_total", (k,))
        fam = reg.snapshot()["c_total"]
        # Two live series plus the overflow fold; exact totals survive.
        assert fam["series"][("a",)] == 1.0
        assert fam["series"][("b",)] == 1.0
        assert fam["series"][(OVERFLOW_LABEL,)] == 3.0
        assert fam["overflowed"] == 3
        assert sum(fam["series"].values()) == 5.0

    def test_non_str_labels_normalize_to_the_same_series(self):
        reg = MetricsRegistry()
        reg.counter("n_total", "n", ("node",))
        reg.inc("n_total", (7,))      # miss path: normalized to ("7",)
        reg.inc("n_total", ("7",))    # fast path: hits the same series
        assert reg.value("n_total", ("7",)) == 2.0
        assert list(reg.snapshot()["n_total"]["series"]) == [("7",)]

    def test_snapshot_is_deterministic_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z_total")
        reg.counter("a_total")
        reg.inc("z_total")
        assert list(reg.snapshot()) == ["a_total", "z_total"]
        assert reg.families() == ["a_total", "z_total"]

    def test_approx_bytes_grows_with_series(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "c", ("k",))
        before = reg.approx_bytes()
        reg.inc("c_total", ("a",))
        assert reg.approx_bytes() > before

    def test_bad_max_series_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry(max_series=0)


class TestNullRegistry:
    def test_null_registry_is_inert(self):
        reg = NullRegistry()
        assert reg.enabled is False
        assert MetricsRegistry().enabled is True
        reg.counter("c_total")
        reg.inc("c_total")
        reg.set("g", 1.0)
        reg.observe("h", 1.0)
        assert reg.families() == []
        assert reg.snapshot() == {}
        assert reg.value("c_total") == 0.0
        assert reg.approx_bytes() == 0

    def test_shared_singleton(self):
        assert isinstance(NULL_REGISTRY, NullRegistry)


# ---------------------------------------------------------------------------
# Span tracer
# ---------------------------------------------------------------------------

class TestSpanTracer:
    def test_parented_spans_build_a_tree(self):
        tracer = SpanTracer()
        root = tracer.start("round_trip", 0.0, task="train")
        child = tracer.start("download", 0.0, parent=root)
        tracer.end(child, 3.0)
        tracer.end(root, 9.0, status="aggregated")
        tree = tracer.tree()
        assert [s.name for s in tree[None]] == ["round_trip"]
        assert [s.name for s in tree[root]] == ["download"]
        assert tree[root][0].duration_s == 3.0
        assert tree[None][0].status == "aggregated"
        assert tracer.orphans() == []

    def test_end_is_idempotent(self):
        tracer = SpanTracer()
        sid = tracer.start("s", 0.0)
        tracer.end(sid, 1.0, status="ok")
        tracer.end(sid, 99.0, status="late")  # ignored
        (span,) = tracer.completed_of("s")
        assert span.end_s == 1.0 and span.status == "ok"
        assert tracer.count("s") == 1

    def test_ring_eviction_keeps_exact_tallies(self):
        tracer = SpanTracer(max_spans=3)
        for i in range(10):
            tracer.record("s", float(i), float(i) + 0.5)
        assert tracer.evicted == 7
        assert len(list(tracer.completed())) == 3
        assert tracer.count("s") == 10  # exact despite eviction
        assert tracer.orphans() == []  # undecidable once evicting

    def test_orphan_detection(self):
        tracer = SpanTracer()
        tracer.record("child", 0.0, 1.0, parent=999)  # parent never existed
        (orphan,) = tracer.orphans()
        assert orphan.parent_id == 999

    def test_open_parent_is_not_an_orphan(self):
        tracer = SpanTracer()
        root = tracer.start("root", 0.0)
        tracer.record("child", 0.0, 1.0, parent=root)
        assert tracer.orphans() == []
        assert tracer.open_count == 1
        assert [s.name for s in tracer.open_spans()] == ["root"]

    def test_annotate_only_open_spans(self):
        tracer = SpanTracer()
        sid = tracer.start("s", 0.0)
        assert tracer.annotate(sid, fault="outage") is True
        tracer.end(sid, 1.0)
        assert tracer.annotate(sid, fault="late") is False
        (span,) = tracer.completed_of("s")
        assert span.annotations == [{"fault": "outage"}]

    def test_to_dicts_covers_completed_then_open(self):
        tracer = SpanTracer()
        tracer.record("done", 0.0, 1.0)
        tracer.start("open", 2.0)
        docs = tracer.to_dicts()
        assert [d["name"] for d in docs] == ["done", "open"]
        assert docs[1]["end_s"] is None and docs[1]["status"] == "in_flight"
        json.dumps(docs)  # JSON-able

    def test_name_totals_and_bounds(self):
        tracer = SpanTracer()
        tracer.record("b", 0.0, 1.0)
        tracer.record("a", 0.0, 1.0)
        assert tracer.name_totals() == {"a": 1, "b": 1}
        assert tracer.approx_bytes() > 0
        with pytest.raises(ValueError):
            SpanTracer(max_spans=0)


# ---------------------------------------------------------------------------
# Phase profiler
# ---------------------------------------------------------------------------

class TestPhaseProfiler:
    def test_record_and_summary(self):
        prof = PhaseProfiler()
        for ms in (1, 2, 3, 4, 5):
            prof.record("fold", ms / 1000.0)
        summary = prof.summary()["fold"]
        assert summary["count"] == 5
        assert summary["total_s"] == pytest.approx(0.015)
        assert summary["mean_s"] == pytest.approx(0.003)
        assert summary["max_s"] == pytest.approx(0.005)
        assert summary["p50_s"] == pytest.approx(0.003)
        assert prof.phases() == ["fold"]
        assert prof.count("never") == 0

    def test_sample_ring_bounds_percentiles_not_totals(self):
        prof = PhaseProfiler(max_samples=4)
        for i in range(100):
            prof.record("p", float(i))
        summary = prof.summary()["p"]
        assert summary["count"] == 100  # exact
        assert summary["sampled"] == 4  # ring
        assert prof.percentile("p", 0.0) == 96.0  # ring holds the newest

    def test_measure_context_manager(self):
        prof = PhaseProfiler()
        with prof.measure("body"):
            pass
        assert prof.count("body") == 1
        assert prof.summary()["body"]["total_s"] >= 0.0

    def test_validation(self):
        prof = PhaseProfiler()
        with pytest.raises(ValueError):
            prof.percentile("p", 101.0)
        with pytest.raises(ValueError):
            PhaseProfiler(max_samples=0)
        assert prof.percentile("never", 50.0) == 0.0


# ---------------------------------------------------------------------------
# Export formats
# ---------------------------------------------------------------------------

class TestExport:
    def test_prometheus_exposition_shape(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", "operations", ("kind",))
        reg.inc("ops_total", ("read",), 3)
        reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        reg.observe("lat_seconds", 0.05)
        reg.observe("lat_seconds", 5.0)
        text = to_prometheus(reg)
        assert "# HELP ops_total operations" in text
        assert "# TYPE ops_total counter" in text
        assert 'ops_total{kind="read"} 3' in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_sum 5.05" in text
        assert "lat_seconds_count 2" in text
        # Deterministic: same registry renders the same text.
        assert text == to_prometheus(reg)

    def test_spans_and_events_jsonl_tagged(self):
        tracer = SpanTracer()
        tracer.record("round", 10.0, 20.0, task="train")
        log = EventLog()
        log.emit(5.0, "coordinator", "task_placed", node=0)
        span_docs = [json.loads(s) for s in spans_to_jsonl(tracer).splitlines()]
        event_docs = [json.loads(s) for s in events_to_jsonl(log).splitlines()]
        assert span_docs[0]["record"] == "span"
        assert event_docs[0]["record"] == "event"

    def test_merged_jsonl_sorts_by_time_events_first(self):
        tracer = SpanTracer()
        tracer.record("span_at_5", 5.0, 6.0)
        log = EventLog()
        log.emit(5.0, "c", "event_at_5")
        log.emit(1.0, "c", "event_at_1")
        docs = [json.loads(s) for s in merged_jsonl(tracer, log).splitlines()]
        kinds = [(d["record"], d.get("kind") or d.get("name")) for d in docs]
        assert kinds == [
            ("event", "event_at_1"),
            ("event", "event_at_5"),  # tie at t=5: the event sorts first
            ("span", "span_at_5"),
        ]


# ---------------------------------------------------------------------------
# Catalogs and the RunTelemetry registry wiring
# ---------------------------------------------------------------------------

class TestCatalogs:
    def test_run_telemetry_declares_the_whole_catalog(self):
        telemetry = RunTelemetry()
        assert telemetry.metrics.families() == sorted(METRIC_CATALOG)

    def test_catalogs_are_non_empty_and_described(self):
        for catalog in (SPAN_CATALOG, PHASE_CATALOG):
            assert catalog
            for name, help_text in catalog.items():
                assert name and help_text

    def test_profiling_opt_out(self):
        assert RunTelemetry(profiling=False).profiler is None
        assert RunTelemetry().profiler is not None


# ---------------------------------------------------------------------------
# The telemetry spec section
# ---------------------------------------------------------------------------

class TestTelemetrySpec:
    def test_default_is_falsy_and_omitted_from_canonical_doc(self):
        spec = TelemetrySpec()
        assert not spec
        doc = ScenarioSpec.from_dict(
            {"population": {"n_devices": 10},
             "tasks": [{"name": "train"}]}
        ).to_dict()
        # Default telemetry stays out of the canonical JSON so existing
        # sweep-cache fingerprints are unchanged.
        assert "telemetry" not in doc

    def test_enabled_round_trips_through_the_doc(self):
        doc = {
            "population": {"n_devices": 10},
            "tasks": [{"name": "train"}],
            "telemetry": {"enabled": True, "max_spans": 64, "profiling": False},
        }
        spec = ScenarioSpec.from_dict(doc)
        assert spec.telemetry.enabled
        assert spec.telemetry.max_spans == 64
        assert not spec.telemetry.profiling
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt.telemetry == spec.telemetry

    def test_validation(self):
        with pytest.raises(SpecError):
            TelemetrySpec(max_spans=0)
        with pytest.raises(SpecError):
            TelemetrySpec.from_dict({"enabled": True, "bogus": 1})

    def test_dotted_override_reaches_the_telemetry_section(self):
        base = ScenarioSpec.from_dict(
            {"population": {"n_devices": 10}, "tasks": [{"name": "train"}]}
        )
        spec = base.with_overrides({"telemetry.enabled": True})
        assert spec.telemetry.enabled
        with pytest.raises(SpecError):
            base.with_overrides({"telemetry.bogus": 1})
