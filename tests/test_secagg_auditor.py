"""Tests for trusted-binary releases and public log auditing (Appendix C.2)."""

import pytest

from repro.secagg import (
    AuditFailure,
    BinaryReleaseProcess,
    LogAuditor,
    LogSnapshot,
    SecAggClient,
    build_deployment,
)
from repro.secagg.merkle import VerifiableLog
from repro.utils import child_rng
import numpy as np


class TestBinaryRelease:
    def test_release_appends_to_log(self):
        proc = BinaryReleaseProcess()
        idx = proc.release(b"tsa-v1", manifest="initial release")
        assert idx == 0
        assert proc.snapshot().size == 1

    def test_rereleasing_same_binary_is_idempotent(self):
        proc = BinaryReleaseProcess()
        assert proc.release(b"tsa-v1") == proc.release(b"tsa-v1")
        assert proc.snapshot().size == 1

    def test_bundle_verifies_for_released_binary(self):
        proc = BinaryReleaseProcess()
        proc.release(b"tsa-v1")
        proc.release(b"tsa-v2")
        bundle = proc.bundle_for(b"tsa-v2")
        LogAuditor().check_bundle(bundle)  # no raise

    def test_unreleased_binary_has_no_bundle(self):
        proc = BinaryReleaseProcess()
        proc.release(b"tsa-v1")
        with pytest.raises(KeyError):
            proc.bundle_for(b"never-released")

    def test_old_bundles_still_verify_after_updates(self):
        # A client holding a v1 bundle from an older snapshot is fine; new
        # releases don't invalidate historical proofs against their root.
        proc = BinaryReleaseProcess()
        proc.release(b"tsa-v1")
        bundle_v1 = proc.bundle_for(b"tsa-v1")
        for v in range(2, 6):
            proc.release(f"tsa-v{v}".encode())
        LogAuditor().check_bundle(bundle_v1)


class TestLogAuditor:
    def test_honest_growth_accepted(self):
        proc = BinaryReleaseProcess()
        auditor = LogAuditor()
        for v in range(1, 5):
            old = auditor.trusted
            proc.release(f"tsa-v{v}".encode())
            snap = proc.snapshot()
            auditor.observe(snap, proc.consistency_proof(old.size))
        assert auditor.trusted.size == 4
        assert auditor.audits_performed == 4

    def test_history_rewrite_caught(self):
        proc = BinaryReleaseProcess()
        proc.release(b"tsa-v1")
        proc.release(b"tsa-v2")
        auditor = LogAuditor()
        auditor.observe(proc.snapshot(), proc.consistency_proof(0))

        # Malicious operator rebuilds the log with a backdoored v1.
        evil = BinaryReleaseProcess()
        evil.release(b"tsa-v1-backdoored")
        evil.release(b"tsa-v2")
        evil.release(b"tsa-v3")
        with pytest.raises(AuditFailure, match="consistency"):
            auditor.observe(evil.snapshot(), evil.consistency_proof(2))

    def test_shrinking_log_caught(self):
        proc = BinaryReleaseProcess()
        for v in range(3):
            proc.release(f"tsa-v{v}".encode())
        auditor = LogAuditor()
        auditor.observe(proc.snapshot(), proc.consistency_proof(0))
        with pytest.raises(AuditFailure, match="shrank"):
            auditor.observe(LogSnapshot(size=1, root=b"\x00" * 32), [])

    def test_bogus_bundle_caught(self):
        proc = BinaryReleaseProcess()
        proc.release(b"tsa-v1")
        bundle = proc.bundle_for(b"tsa-v1")
        from dataclasses import replace

        with pytest.raises(AuditFailure, match="inclusion"):
            LogAuditor().check_bundle(replace(bundle, entry=b"binary:forged"))

    def test_initial_trust_is_empty_log(self):
        auditor = LogAuditor()
        assert auditor.trusted.size == 0
        assert auditor.trusted.root == VerifiableLog().root(0)


class TestEndToEndBinaryUpdate:
    def test_client_accepts_binary_released_through_process(self):
        # Wire a release-process bundle into a live deployment: the client
        # verifies the same inclusion proof the auditor does.
        proc = BinaryReleaseProcess()
        dep = build_deployment(vector_length=4, threshold=1,
                               trusted_binary=b"papaya-tsa-v2")
        proc.release(b"papaya-tsa-v0")
        proc.release(b"papaya-tsa-v2", manifest="fixes CVE-2022-XXXX")
        bundle = proc.bundle_for(b"papaya-tsa-v2")

        client = SecAggClient(
            0, dep.codec, dep.authority, dep.tsa.binary_hash,
            dep.tsa.params_hash, child_rng(0, "audit-client"),
        )
        sub = client.participate(np.zeros(4), dep.server.assign_leg(),
                                 log_bundle=bundle)
        assert dep.server.submit(sub) is True
