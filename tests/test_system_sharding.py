"""System wiring of the sharded aggregation plane.

Covers shard placement across aggregator nodes, per-shard demand
reports, upload routing to the shard's host, shard failover through the
heartbeat/sweep machinery (partial state loss, slice re-routing,
re-placement and the no-capacity/recovery path), the rebalance
interaction, and the SystemConfig knobs.
"""

import numpy as np
import pytest

from repro.core import TaskConfig, TrainingMode
from repro.sim import MetricsTrace, Outcome, Simulator
from repro.sim.network import NetworkModel
from repro.sim.population import DevicePopulation, PopulationConfig
from repro.system import SurrogateAdapter
from repro.system.aggregator import AggregatorNode
from repro.system.client_runtime import ClientSession
from repro.system.coordinator import Coordinator
from repro.system.orchestrator import FederatedSimulation, SystemConfig
from repro.system.sharding import ShardedFLTaskRuntime
from repro.utils import EventLog, child_rng


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def log():
    return EventLog()


def make_sharded_runtime(sim, log, name="t", concurrency=12, goal=4,
                         num_shards=4, shard_routing="hash"):
    cfg = TaskConfig(name=name, mode=TrainingMode.ASYNC, concurrency=concurrency,
                     aggregation_goal=goal, model_size_bytes=1000)
    return ShardedFLTaskRuntime(
        cfg, SurrogateAdapter(seed=0), sim, MetricsTrace(), log,
        num_shards=num_shards, shard_routing=shard_routing,
    )


def make_coordinator(sim, log, n_aggs=2):
    coord = Coordinator(sim, log, child_rng(0, "sharding-test"),
                        heartbeat_interval_s=5.0, heartbeat_miss_limit=2)
    nodes = [AggregatorNode(i, sim, log) for i in range(n_aggs)]
    for n in nodes:
        coord.register_aggregator(n)
    return coord, nodes


def attach_session(sim, rt, device_id):
    pop = DevicePopulation(PopulationConfig(n_devices=device_id + 1), seed=0)
    session = ClientSession(
        profile=pop.profile(device_id), task_rt=rt, sim=sim,
        network=NetworkModel(), population=pop, trace=rt.trace,
        participation=0, failure_detection_s=5.0,
        on_end=lambda s: rt.session_ended(s),
    )
    rt.pending_assignments += 1
    rt.attach_session(session)
    return session


class TestShardedRuntimeConstruction:
    def test_requires_async_mode(self, sim, log):
        cfg = TaskConfig(name="t", mode=TrainingMode.SYNC, concurrency=8,
                         aggregation_goal=4, model_size_bytes=1000)
        with pytest.raises(ValueError, match="ASYNC"):
            ShardedFLTaskRuntime(cfg, SurrogateAdapter(seed=0), sim,
                                 MetricsTrace(), log, num_shards=2)

    def test_rejects_secure_aggregation(self, sim, log):
        cfg = TaskConfig(name="t", mode=TrainingMode.ASYNC, concurrency=8,
                         aggregation_goal=4, secure_aggregation=True,
                         model_size_bytes=1000)
        with pytest.raises(ValueError, match="secure"):
            ShardedFLTaskRuntime(cfg, SurrogateAdapter(seed=0), sim,
                                 MetricsTrace(), log, num_shards=2)

    def test_rejects_unknown_routing(self, sim, log):
        with pytest.raises(ValueError):
            make_sharded_runtime(sim, log, shard_routing="roulette")

    def test_place_shard_validates_shard_id(self, sim, log):
        rt = make_sharded_runtime(sim, log, num_shards=2)
        node = AggregatorNode(0, sim, log)
        with pytest.raises(ValueError):
            rt.place_shard(5, node)


class TestShardPlacement:
    def test_shards_spread_evenly_across_nodes(self, sim, log):
        coord, nodes = make_coordinator(sim, log, n_aggs=2)
        rt = make_sharded_runtime(sim, log, num_shards=4)
        coord.register_task(rt)
        assert sorted(coord.shard_placement["t"]) == [0, 1, 2, 3]
        per_node = [len(rt.hosted_shards(n)) for n in nodes]
        assert per_node == [2, 2]
        assert rt.node is rt.shard_nodes[0]  # root rides with shard 0
        assert coord.placement["t"] == rt.shard_nodes[0].node_id
        # Both nodes host the task runtime object itself.
        assert all(n.tasks["t"] is rt for n in nodes)

    def test_workload_split_by_hosted_share(self, sim, log):
        coord, nodes = make_coordinator(sim, log, n_aggs=2)
        rt = make_sharded_runtime(sim, log, num_shards=4)
        coord.register_task(rt)
        full = rt.config.concurrency * rt.config.model_size_bytes
        assert nodes[0].estimated_workload() == pytest.approx(full / 2)
        assert sum(n.estimated_workload() for n in nodes) == pytest.approx(full)

    def test_per_shard_demand_entries_sum_to_task_demand(self, sim, log):
        coord, nodes = make_coordinator(sim, log, n_aggs=2)
        rt = make_sharded_runtime(sim, log, num_shards=4, concurrency=10)
        coord.register_task(rt)
        reports = {}
        for n in nodes:
            reports.update(n.demand_report())
        assert set(reports) == {"t/s0", "t/s1", "t/s2", "t/s3"}
        assert sum(reports.values()) == rt.demand() == 10
        # The split is even with the remainder on the lowest shard ids.
        assert sorted(reports.values(), reverse=True) == [3, 3, 2, 2]

    def test_is_routable_tracks_any_live_host(self, sim, log):
        coord, nodes = make_coordinator(sim, log, n_aggs=2)
        rt = make_sharded_runtime(sim, log, num_shards=2)
        coord.register_task(rt)
        assert rt.is_routable()
        nodes[0].fail()
        assert rt.is_routable()
        nodes[1].fail()
        assert not rt.is_routable()


class TestShardedUploadRouting:
    def test_upload_enqueues_on_the_shard_host(self, sim, log):
        coord, nodes = make_coordinator(sim, log, n_aggs=2)
        rt = make_sharded_runtime(sim, log, num_shards=2, goal=4)
        coord.register_task(rt)
        session = attach_session(sim, rt, 0)
        rt.core.register_download(session.device_id)
        shard = rt.core.shard_of(session.device_id)
        host = rt.shard_nodes[shard]
        other = nodes[1 - host.node_id]
        result = rt.adapter.train(session.profile, None, rt.core.version, 0)
        rt.upload_arrived(session, result)
        assert host.updates_processed == 1
        assert other.updates_processed == 0
        sim.run_until_idle()
        assert rt.core.updates_received == 1
        assert session.finished

    def test_upload_to_dead_shard_host_aborts_session(self, sim, log):
        coord, nodes = make_coordinator(sim, log, n_aggs=2)
        rt = make_sharded_runtime(sim, log, num_shards=2, goal=4)
        coord.register_task(rt)
        session = attach_session(sim, rt, 0)
        rt.core.register_download(session.device_id)
        shard = rt.core.shard_of(session.device_id)
        rt.shard_nodes[shard].fail()
        result = rt.adapter.train(session.profile, None, rt.core.version, 0)
        rt.upload_arrived(session, result)
        assert session.finished
        assert rt.core.updates_received == 0
        assert rt.core.in_flight_count() == 0


class TestShardFailover:
    def _standup(self, sim, log, num_shards=4):
        coord, nodes = make_coordinator(sim, log, n_aggs=2)
        rt = make_sharded_runtime(sim, log, num_shards=num_shards, goal=50,
                                  concurrency=50)
        coord.register_task(rt)
        return coord, nodes, rt

    def _clients_on(self, rt, node, count=20):
        """Attach sessions and register until >=2 land on node's shards."""
        on_node, elsewhere = [], []
        for device_id in range(count):
            session = attach_session(rt.sim, rt, device_id)
            rt.core.register_download(device_id)
            shard = rt.core.shard_of(device_id)
            if rt.shard_nodes[shard] is node:
                on_node.append(session)
            else:
                elsewhere.append(session)
        return on_node, elsewhere

    def test_dead_node_drops_only_its_shards(self, sim, log):
        coord, nodes, rt = self._standup(sim, log)
        victim = nodes[0]
        survivor = nodes[1]
        victims, survivors = self._clients_on(rt, victim)
        assert len(victims) > 1 and survivors
        # Fold one update into a victim shard so partial state is lost
        # (its uploader leaves the in-flight set, like the real path).
        vic = victims[0]
        rt.core.receive_update(
            rt.adapter.train(vic.profile, None, rt.core.version, 0)
        )
        assert rt.core.buffered_count == 1

        victim.fail()  # detected by the next sweep (alive flag is down)
        coord.on_heartbeat(survivor, survivor.demand_report())
        moved = coord.sweep_failures()

        assert moved == ["t"]
        # The dead node's shards moved to the survivor; all four live.
        assert all(n is survivor for n in rt.shard_nodes.values())
        assert rt.core.live_shards() == [0, 1, 2, 3]
        assert set(coord.shard_placement["t"].values()) == {survivor.node_id}
        # The victim shard's partial fold and in-flight sessions are gone
        # (vic already uploaded, so only the still-training ones abort)...
        assert rt.core.buffered_count == 0
        assert all(s.finished for s in victims[1:])
        # ...but the other shards' sessions keep running.
        assert all(not s.finished for s in survivors)
        assert rt.core.in_flight_count() == len(survivors)
        assert log.count("shard_failed") >= 1

    def test_no_capacity_leaves_shards_dead_and_rerouted(self, sim, log):
        coord, nodes, rt = self._standup(sim, log, num_shards=2)
        for node in nodes:
            node.fail()
        moved = coord.sweep_failures()
        assert moved == ["t"]
        assert rt.unplaced_shards() == [0, 1]
        assert rt.core.live_shards() == []
        assert not rt.is_routable()
        # The placement map must not keep claiming the dead hosts.
        assert coord.shard_placement["t"] == {}

        # A download landing during the plane-wide outage must not crash
        # the event: the client is registered unrouted and its upload is
        # rejected like the single aggregator's dead-host path.
        rt.core.register_download(77)
        assert rt.core.shard_of(77) is None
        session = attach_session(sim, rt, 77)
        result = rt.adapter.train(session.profile, None, rt.core.version, 0)
        rt.upload_arrived(session, result)
        assert session.finished
        assert rt.core.updates_received == 0

        # A node recovers: the next sweep re-places and revives them.
        nodes[1].recover()
        coord.on_heartbeat(nodes[1], nodes[1].demand_report())
        moved = coord.sweep_failures()
        assert moved == ["t"]
        assert rt.unplaced_shards() == []
        assert rt.core.live_shards() == [0, 1]
        assert set(coord.shard_placement["t"].values()) == {1}
        assert rt.is_routable()
        # Fresh downloads route again after recovery.
        rt.core.register_download(123)
        assert rt.core.shard_of(123) is not None

    def test_assign_client_uses_routability(self, sim, log):
        coord, nodes, rt = self._standup(sim, log, num_shards=2)
        coord.tasks["t"] = rt
        assert coord.assign_client() is rt
        rt.pending_assignments = 0
        for node in nodes:
            node.fail()
        assert coord.assign_client() is None
        assert coord.assignments_rejected == 1


class TestShardedRebalance:
    def test_sharded_tasks_are_not_whole_task_move_candidates(self, sim, log):
        coord, nodes = make_coordinator(sim, log, n_aggs=2)
        rt = make_sharded_runtime(sim, log, name="shardy", num_shards=2)
        other = make_sharded_runtime(sim, log, name="shardy2", num_shards=2)
        coord.register_task(rt)
        coord.register_task(other)
        # Overload node 0's queue: both tasks there are sharded -> no move.
        class FakeSession:
            device_id = 0
        nodes[0].update_process_time_s = 1.0
        for _ in range(200):
            nodes[0].enqueue_update(rt, FakeSession(), None)
        assert nodes[0].queue_depth_seconds() > 30.0
        assert coord.rebalance_overloaded(queue_threshold_s=30.0) == []

    def test_rebalance_log_carries_threshold_and_depth(self, sim, log):
        from repro.system.aggregator import FLTaskRuntime

        coord, nodes = make_coordinator(sim, log, n_aggs=2)
        heavy_cfg = TaskConfig(name="heavy", mode=TrainingMode.ASYNC,
                               concurrency=100, aggregation_goal=4,
                               model_size_bytes=1000)
        light_cfg = TaskConfig(name="light", mode=TrainingMode.ASYNC,
                               concurrency=2, aggregation_goal=2,
                               model_size_bytes=1000)
        heavy = FLTaskRuntime(heavy_cfg, SurrogateAdapter(seed=0), sim,
                              MetricsTrace(), log)
        light = FLTaskRuntime(light_cfg, SurrogateAdapter(seed=0), sim,
                              MetricsTrace(), log)
        coord.register_task(heavy)
        host = heavy.node
        coord.register_task(light)
        if light.node is not host:
            light.node.drop_task("light")
            host.host(light)
            coord.placement["light"] = host.node_id

        class FakeSession:
            device_id = 0
        host.update_process_time_s = 1.0
        for _ in range(48):
            host.enqueue_update(heavy, FakeSession(), None)
        moved = coord.rebalance_overloaded(queue_threshold_s=10.0)
        assert moved == ["light"]
        [event] = log.of_kind("task_rebalanced")
        assert event.detail["queue_threshold_s"] == 10.0
        assert event.detail["queue_depth_s"] > 10.0
        assert "demand" in event.detail


class TestShardedSystemConfig:
    def test_knob_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(num_shards=0)
        with pytest.raises(ValueError):
            SystemConfig(shard_routing="roulette")
        with pytest.raises(ValueError):
            SystemConfig(rebalance_queue_threshold_s=0.0)
        cfg = SystemConfig(num_shards=8, shard_routing="load",
                           rebalance_queue_threshold_s=12.5)
        assert cfg.num_shards == 8

    def test_default_config_builds_unsharded_runtime(self):
        from repro.system.aggregator import FLTaskRuntime

        pop = DevicePopulation(PopulationConfig(n_devices=50), seed=0)
        cfg = TaskConfig(name="t", mode=TrainingMode.ASYNC, concurrency=8,
                         aggregation_goal=4, model_size_bytes=1000)
        fs = FederatedSimulation([(cfg, SurrogateAdapter(seed=0))], pop, seed=0)
        rt = fs.task_runtimes["t"]
        assert type(rt) is FLTaskRuntime
        assert not isinstance(rt, ShardedFLTaskRuntime)

    def test_mixed_workload_shards_only_eligible_tasks(self):
        """num_shards > 1 shards the async non-secure tasks and leaves
        SYNC tasks on the single-aggregator path instead of crashing."""
        from repro.system.aggregator import FLTaskRuntime

        pop = DevicePopulation(PopulationConfig(n_devices=100), seed=0)
        async_cfg = TaskConfig(name="a", mode=TrainingMode.ASYNC, concurrency=8,
                               aggregation_goal=4, model_size_bytes=1000)
        sync_cfg = TaskConfig(name="s", mode=TrainingMode.SYNC, concurrency=8,
                              aggregation_goal=4, model_size_bytes=1000)
        fs = FederatedSimulation(
            [(async_cfg, SurrogateAdapter(seed=0)),
             (sync_cfg, SurrogateAdapter(seed=1))],
            pop, seed=0, system=SystemConfig(num_shards=2),
        )
        assert isinstance(fs.task_runtimes["a"], ShardedFLTaskRuntime)
        assert type(fs.task_runtimes["s"]) is FLTaskRuntime

    @pytest.mark.parametrize("routing", ["hash", "load"])
    def test_sharded_simulation_runs_and_converges(self, routing):
        pop = DevicePopulation(PopulationConfig(n_devices=400), seed=0)
        cfg = TaskConfig(name="t", mode=TrainingMode.ASYNC, concurrency=24,
                         aggregation_goal=6, model_size_bytes=100_000)
        fs = FederatedSimulation(
            [(cfg, SurrogateAdapter(seed=0))], pop, seed=0,
            system=SystemConfig(n_aggregators=3, num_shards=4,
                                shard_routing=routing),
        )
        res = fs.run(t_end=3e5, max_server_steps=15)
        stats = res.stats()
        assert stats.server_steps >= 15
        rt = fs.task_runtimes["t"]
        loads = rt.core.shard_loads()
        assert sum(loads) == stats.aggregated
        assert sum(1 for load in loads if load > 0) >= 2

    def test_sharded_simulation_survives_node_failure(self):
        pop = DevicePopulation(PopulationConfig(n_devices=400), seed=0)
        cfg = TaskConfig(name="t", mode=TrainingMode.ASYNC, concurrency=24,
                         aggregation_goal=6, model_size_bytes=100_000)
        fs = FederatedSimulation(
            [(cfg, SurrogateAdapter(seed=0))], pop, seed=0,
            system=SystemConfig(n_aggregators=3, num_shards=4),
        )
        rt = fs.task_runtimes["t"]
        victim = rt.shard_nodes[0].node_id
        fs.inject_aggregator_failure(at_time=100.0, node_id=victim)
        res = fs.run(t_end=4000.0)
        assert rt.core.shard_failovers >= 1
        assert rt.core.live_shards() == [0, 1, 2, 3]  # all re-placed
        assert res.stats().server_steps > 5
        assert victim not in {n.node_id for n in rt.shard_nodes.values()}

    def test_rebalance_threshold_flows_from_config(self):
        """The orchestrator's heartbeat loop passes the configured
        backpressure threshold to rebalance_overloaded."""
        pop = DevicePopulation(PopulationConfig(n_devices=100), seed=0)
        heavy = TaskConfig(name="heavy", mode=TrainingMode.ASYNC,
                           concurrency=30, aggregation_goal=4,
                           model_size_bytes=1_000_000)
        light = TaskConfig(name="light", mode=TrainingMode.ASYNC,
                           concurrency=4, aggregation_goal=2,
                           model_size_bytes=1000)
        fs = FederatedSimulation(
            [(heavy, SurrogateAdapter(seed=0)), (light, SurrogateAdapter(seed=1))],
            pop, seed=0,
            system=SystemConfig(
                n_aggregators=2,
                update_process_time_s=3.0,  # forces queue backlog
                rebalance_queue_threshold_s=1e-3,
            ),
        )
        # Co-host both tasks so the rebalancer has something to move.
        coord = fs.coordinator
        rts = fs.task_runtimes
        if rts["light"].node is not rts["heavy"].node:
            rts["light"].node.drop_task("light")
            rts["heavy"].node.host(rts["light"])
            coord.placement["light"] = rts["heavy"].node.node_id
        fs.run(t_end=600.0)
        events = fs.log.of_kind("task_rebalanced")
        assert events, "backlog never triggered a rebalance"
        assert all(e.detail["queue_threshold_s"] == 1e-3 for e in events)


def test_shard_load_skew_is_balanced_at_scale():
    """Hash routing spreads a large population near-evenly (the skew the
    shards sweep reports stays close to 1)."""
    from repro.core.sharding import HashShardRouting, _Shard

    shards = [_Shard() for _ in range(8)]
    routing = HashShardRouting()
    counts = np.zeros(8, dtype=int)
    for cid in range(4096):
        counts[routing.route(cid, shards)] += 1
    skew = counts.max() / (4096 / 8)
    assert skew < 1.2
