"""Tests for the local trainer, server optimizers, and surrogate model."""

import numpy as np
import pytest

from repro.core import (
    FedAdam,
    FedAvgM,
    FedBuffAggregator,
    FedSGD,
    GlobalModelState,
    LocalTrainer,
    SurrogateModelState,
    SurrogateParams,
    SurrogateTrainer,
    SyncRoundAggregator,
)
from repro.data import CorpusSpec, FederatedDataset, TopicMarkovCorpus
from repro.nn import LSTMLanguageModel, ModelConfig


@pytest.fixture(scope="module")
def small_setup():
    cfg = ModelConfig(vocab_size=24, embed_dim=8, hidden_dim=12)
    corpus = TopicMarkovCorpus(CorpusSpec(vocab_size=24, seq_len=8), seed=11)
    fd = FederatedDataset(corpus)
    trainer = LocalTrainer(cfg, lr=0.5, batch_size=8, seed=0)
    model = LSTMLanguageModel(cfg, seed=1)
    return cfg, fd, trainer, model


class TestLocalTrainer:
    def test_delta_is_trained_minus_initial(self, small_setup):
        _, fd, trainer, model = small_setup
        ds = fd.client_dataset(1, 20)
        vec = model.get_flat()
        res = trainer.train(vec, ds, initial_version=0)
        assert res.delta.shape == vec.shape
        assert np.linalg.norm(res.delta) > 0
        assert res.num_examples == ds.num_train_examples
        assert res.initial_version == 0

    def test_training_improves_local_loss(self, small_setup):
        _, fd, trainer, model = small_setup
        ds = fd.client_dataset(2, 60)
        vec = model.get_flat()
        before = trainer.evaluate(vec, ds.train_x, ds.train_y)
        res = trainer.train(vec, ds, initial_version=0)
        after = trainer.evaluate(vec + res.delta, ds.train_x, ds.train_y)
        assert after < before

    def test_deterministic_per_participation(self, small_setup):
        _, fd, trainer, model = small_setup
        ds = fd.client_dataset(3, 20)
        vec = model.get_flat()
        r1 = trainer.train(vec, ds, 0, participation=0)
        r2 = trainer.train(vec, ds, 0, participation=0)
        np.testing.assert_array_equal(r1.delta, r2.delta)

    def test_participation_reshuffles(self, small_setup):
        _, fd, trainer, model = small_setup
        ds = fd.client_dataset(3, 20)
        vec = model.get_flat()
        r1 = trainer.train(vec, ds, 0, participation=0)
        r2 = trainer.train(vec, ds, 0, participation=1)
        assert not np.array_equal(r1.delta, r2.delta)

    def test_initial_model_not_mutated(self, small_setup):
        _, fd, trainer, model = small_setup
        ds = fd.client_dataset(4, 10)
        vec = model.get_flat()
        ref = vec.copy()
        trainer.train(vec, ds, 0)
        np.testing.assert_array_equal(vec, ref)

    def test_invalid_args(self, small_setup):
        cfg = small_setup[0]
        with pytest.raises(ValueError):
            LocalTrainer(cfg, batch_size=0)
        with pytest.raises(ValueError):
            LocalTrainer(cfg, epochs=0)

    def test_multiple_local_epochs_move_further(self, small_setup):
        cfg, fd, _, model = small_setup
        ds = fd.client_dataset(6, 40)
        vec = model.get_flat()
        one = LocalTrainer(cfg, lr=0.3, batch_size=8, epochs=1, seed=0)
        three = LocalTrainer(cfg, lr=0.3, batch_size=8, epochs=3, seed=0)
        d1 = np.linalg.norm(one.train(vec, ds, 0).delta)
        d3 = np.linalg.norm(three.train(vec, ds, 0).delta)
        assert d3 > d1

    def test_perplexity_eval(self, small_setup):
        _, fd, trainer, model = small_setup
        ds = fd.client_dataset(5, 30)
        ppl = trainer.evaluate_perplexity(model.get_flat(), ds.test_x, ds.test_y)
        assert 1.0 < ppl < 50.0  # near-uniform start: ~vocab size


class TestServerOptimizers:
    def test_fedsgd_applies_delta(self):
        opt = FedSGD(lr=0.5)
        out = opt.apply(np.zeros(2, np.float32), np.array([2.0, -2.0], np.float32))
        np.testing.assert_allclose(out, [1.0, -1.0])

    def test_fedavgm_momentum(self):
        opt = FedAvgM(lr=1.0, momentum=0.5)
        p = np.zeros(1, np.float32)
        p = opt.apply(p, np.ones(1, np.float32))   # v=1, p=1
        p = opt.apply(p, np.ones(1, np.float32))   # v=1.5, p=2.5
        assert p[0] == pytest.approx(2.5)
        opt.reset()
        p = opt.apply(np.zeros(1, np.float32), np.ones(1, np.float32))
        assert p[0] == pytest.approx(1.0)

    def test_fedadam_moves_toward_delta_direction(self):
        opt = FedAdam(lr=0.1)
        p = np.zeros(3, np.float32)
        out = opt.apply(p, np.array([1.0, -1.0, 0.5], np.float32))
        assert out[0] > 0 and out[1] < 0 and out[2] > 0
        assert opt.step_count == 1

    def test_fedadam_reset(self):
        opt = FedAdam()
        opt.apply(np.zeros(1, np.float32), np.ones(1, np.float32))
        opt.reset()
        assert opt.step_count == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FedSGD(lr=0)
        with pytest.raises(ValueError):
            FedAvgM(momentum=1.0)

    def test_global_state_requires_flat(self):
        with pytest.raises(ValueError):
            GlobalModelState(np.zeros((2, 2), np.float32), FedSGD())

    def test_global_state_shape_check(self):
        st = GlobalModelState(np.zeros(3, np.float32), FedSGD())
        with pytest.raises(ValueError):
            st.apply(np.zeros(4, np.float32), 1)


class TestSurrogate:
    def test_loss_decreases_with_progress(self):
        st = SurrogateModelState()
        l0 = st.loss()
        st.apply(np.array([1.0]), 10)
        assert st.loss() < l0

    def test_loss_bounded_by_floor(self):
        st = SurrogateModelState()
        st.apply(np.array([1e9]), 100)
        assert st.loss() >= st.params.floor_loss

    def test_step_efficiency_saturates(self):
        st = SurrogateModelState(SurrogateParams(critical_goal=100.0))
        # Small K: nearly linear. Large K: saturating toward K_c.
        assert st.step_efficiency(1) == pytest.approx(1.0 / 1.01, rel=1e-6)
        assert st.step_efficiency(10_000) < 101.0

    def test_per_update_efficiency_decreasing_in_goal(self):
        st = SurrogateModelState()
        effs = [st.step_efficiency(k) / k for k in (1, 10, 100, 1000)]
        assert all(a > b for a, b in zip(effs, effs[1:]))

    def test_progress_for_loss_inverse(self):
        st = SurrogateModelState()
        target = 3.0
        p = st.progress_for_loss(target)
        st.progress = p
        assert st.loss() == pytest.approx(target, rel=1e-9)

    def test_progress_for_loss_range_check(self):
        st = SurrogateModelState()
        with pytest.raises(ValueError):
            st.progress_for_loss(st.params.floor_loss)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SurrogateParams(floor_loss=10.0, initial_loss=5.0)
        with pytest.raises(ValueError):
            SurrogateParams(tau=0)
        with pytest.raises(ValueError):
            SurrogateParams(quality_noise=-1)

    def test_trainer_quality_increases_with_examples(self):
        tr = SurrogateTrainer(SurrogateParams(quality_noise=0.0))
        assert tr.quality(500) > tr.quality(50) > tr.quality(5)

    def test_trainer_reference_quality_is_one(self):
        tr = SurrogateTrainer(SurrogateParams(reference_examples=50, quality_noise=0.0))
        assert tr.quality(50) == pytest.approx(1.0)

    def test_trainer_deterministic(self):
        tr = SurrogateTrainer(seed=0)
        r1 = tr.train(30, client_id=1, initial_version=0, participation=2)
        r2 = tr.train(30, client_id=1, initial_version=0, participation=2)
        np.testing.assert_array_equal(r1.delta, r2.delta)
        r3 = tr.train(30, client_id=1, initial_version=0, participation=3)
        assert not np.array_equal(r1.delta, r3.delta)

    def test_surrogate_drives_fedbuff(self):
        st = SurrogateModelState()
        tr = SurrogateTrainer(seed=1)
        agg = FedBuffAggregator(st, goal=5, example_weighting="none",
                                normalize_by="goal")
        for cid in range(5):
            v, _ = agg.register_download(cid)
            agg.receive_update(tr.train(50, cid, v))
        assert agg.version == 1
        assert st.progress > 0
        assert st.loss() < st.params.initial_loss

    def test_surrogate_drives_syncfl(self):
        st = SurrogateModelState()
        tr = SurrogateTrainer(seed=1)
        agg = SyncRoundAggregator(st, goal=4, example_weighting="none")
        for cid in range(4):
            v, _ = agg.register_download(cid)
            agg.receive_update(tr.train(50, cid, v))
        assert agg.version == 1 and st.progress > 0

    def test_small_goal_more_efficient_per_update(self):
        # The large-cohort effect (paper Fig. 10): same number of client
        # updates, smaller K converges further.
        def run(goal, n_updates):
            st = SurrogateModelState()
            tr = SurrogateTrainer(SurrogateParams(quality_noise=0.0))
            agg = FedBuffAggregator(st, goal=goal, example_weighting="none",
                                    normalize_by="goal")
            for cid in range(n_updates):
                v, _ = agg.register_download(cid)
                agg.receive_update(tr.train(50, cid, v))
            return st.loss()

        assert run(goal=10, n_updates=1000) < run(goal=500, n_updates=1000)


class TestEndToEndFederatedTraining:
    def test_fedbuff_with_real_gradients_converges(self, small_setup):
        cfg, fd, trainer, model = small_setup
        state = GlobalModelState(model.get_flat(), FedAdam(lr=0.05))
        agg = FedBuffAggregator(state, goal=4)
        ex, ey = fd.evaluation_batch(list(range(8)), [30] * 8)
        before = trainer.evaluate(state.current(), ex, ey)
        part = 0
        for step in range(8):
            for cid in range(4):
                client = step * 4 + cid
                version, vec = agg.register_download(client)
                ds = fd.client_dataset(client, 30)
                agg.receive_update(trainer.train(vec, ds, version, part))
                part += 1
        after = trainer.evaluate(state.current(), ex, ey)
        assert agg.version == 8
        assert after < before - 0.05
