"""Tests for synchronous rounds with over-selection."""

import numpy as np
import pytest

from repro.core import FedSGD, GlobalModelState, SyncRoundAggregator, TrainingResult


def make_state(dim=1):
    return GlobalModelState(np.zeros(dim, dtype=np.float32), FedSGD(lr=1.0))


def result(cid, delta, n=1, version=0):
    return TrainingResult(
        client_id=cid,
        delta=np.asarray(delta, dtype=np.float32),
        num_examples=n,
        train_loss=1.0,
        initial_version=version,
    )


class TestRounds:
    def test_round_closes_at_goal(self):
        agg = SyncRoundAggregator(make_state(), goal=3)
        infos = []
        for cid in range(3):
            agg.register_download(cid)
            _, info = agg.receive_update(result(cid, [1.0]))
            infos.append(info)
        assert infos[:2] == [None, None]
        assert infos[2].version == 1
        np.testing.assert_allclose(agg.state.current(), [1.0])

    def test_example_weighted_average(self):
        agg = SyncRoundAggregator(make_state(), goal=2)
        agg.register_download(0)
        agg.register_download(1)
        agg.receive_update(result(0, [0.0], n=9))
        _, info = agg.receive_update(result(1, [10.0], n=1))
        np.testing.assert_allclose(agg.state.current(), [1.0])
        assert info.total_weight == 10.0

    def test_overselected_stragglers_aborted_at_close(self):
        # Goal 2, cohort 3: third client still training when round closes.
        agg = SyncRoundAggregator(make_state(), goal=2, over_selection=0.5)
        for cid in range(3):
            agg.register_download(cid)
        agg.receive_update(result(0, [1.0]))
        _, info = agg.receive_update(result(1, [1.0]))
        assert info.discarded == (2,)
        assert agg.updates_discarded == 1
        assert agg.in_flight_count() == 0

    def test_late_update_from_closed_round_discarded(self):
        agg = SyncRoundAggregator(make_state(), goal=1)
        agg.register_download(0)
        agg.register_download(1)  # joins round 0
        agg.receive_update(result(0, [1.0]))  # closes round 0
        # Client 1 somehow uploads after the round closed: must be discarded.
        agg.register_download(1)
        agg._in_flight[1] = 0  # simulate stale-round membership
        upd, info = agg.receive_update(result(1, [100.0], version=0))
        assert info is None and upd.weight == 0.0
        np.testing.assert_allclose(agg.state.current(), [1.0])

    def test_mid_round_replacement_allowed(self):
        # Device E drops, Device C replaces it (Figure 1 caption).
        agg = SyncRoundAggregator(make_state(), goal=2)
        agg.register_download(0)
        agg.register_download(1)
        agg.client_failed(1)
        agg.register_download(2)  # replacement joins the SAME round
        agg.receive_update(result(0, [1.0]))
        _, info = agg.receive_update(result(2, [1.0]))
        assert info is not None and info.version == 1
        assert set(info.contributors) == {0, 2}

    def test_staleness_always_zero(self):
        agg = SyncRoundAggregator(make_state(), goal=1)
        agg.register_download(0)
        _, info = agg.receive_update(result(0, [1.0]))
        assert info.mean_staleness == 0.0 and info.max_staleness == 0
        assert agg.stale_clients() == []

    def test_cohort_size(self):
        agg = SyncRoundAggregator(make_state(), goal=1000, over_selection=0.3)
        assert agg.cohort_size == 1300


class TestDemand:
    def test_demand_at_round_start(self):
        agg = SyncRoundAggregator(make_state(), goal=10, over_selection=0.3)
        assert agg.demand() == 13

    def test_demand_shrinks_as_updates_arrive(self):
        agg = SyncRoundAggregator(make_state(), goal=4, over_selection=0.0)
        for cid in range(4):
            agg.register_download(cid)
        assert agg.demand() == 0
        agg.receive_update(result(0, [1.0]))
        # 3 outstanding, 3 in flight -> no extra demand.
        assert agg.demand() == 0
        agg.client_failed(1)
        assert agg.demand() == 1

    def test_demand_resets_after_round(self):
        agg = SyncRoundAggregator(make_state(), goal=2)
        agg.register_download(0)
        agg.register_download(1)
        agg.receive_update(result(0, [1.0]))
        agg.receive_update(result(1, [1.0]))
        assert agg.demand() == 2  # fresh round wants a fresh cohort


class TestValidation:
    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SyncRoundAggregator(make_state(), goal=0)
        with pytest.raises(ValueError):
            SyncRoundAggregator(make_state(), goal=1, over_selection=1.0)
        with pytest.raises(ValueError):
            SyncRoundAggregator(make_state(), goal=1, example_weighting="x")

    def test_unknown_client_rejected(self):
        agg = SyncRoundAggregator(make_state(), goal=1)
        with pytest.raises(KeyError):
            agg.receive_update(result(3, [1.0]))
