"""Tests for the wire serialization of model updates."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.utils import (
    SerializationError,
    chunk_payload,
    deserialize_vector,
    reassemble_chunks,
    serialize_vector,
)


class TestRoundTrip:
    @pytest.mark.parametrize("dtype", ["<f4", "<f8", "<u4", "<u8", "<i4", "<i8"])
    def test_roundtrip_dtypes(self, dtype):
        vec = np.arange(17).astype(dtype)
        out = deserialize_vector(serialize_vector(vec))
        np.testing.assert_array_equal(out, vec)
        assert out.dtype == np.dtype(dtype)

    def test_roundtrip_empty(self):
        vec = np.array([], dtype=np.float32)
        out = deserialize_vector(serialize_vector(vec))
        assert out.size == 0

    def test_non_1d_rejected(self):
        with pytest.raises(SerializationError):
            serialize_vector(np.zeros((2, 2), dtype=np.float32))

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(SerializationError):
            serialize_vector(np.zeros(3, dtype=np.float16))

    @given(
        hnp.arrays(
            dtype=np.float32,
            shape=st.integers(0, 200),
            elements=st.floats(-1e6, 1e6, width=32),
        )
    )
    def test_roundtrip_property(self, vec):
        np.testing.assert_array_equal(deserialize_vector(serialize_vector(vec)), vec)


class TestIntegrity:
    def test_truncated_header_rejected(self):
        with pytest.raises(SerializationError, match="header"):
            deserialize_vector(b"PAPY")

    def test_bad_magic_rejected(self):
        blob = bytearray(serialize_vector(np.ones(4, dtype=np.float32)))
        blob[0] = ord("X")
        with pytest.raises(SerializationError, match="magic"):
            deserialize_vector(bytes(blob))

    def test_flipped_payload_byte_detected(self):
        blob = bytearray(serialize_vector(np.ones(16, dtype=np.float32)))
        blob[-1] ^= 0xFF
        with pytest.raises(SerializationError, match="CRC"):
            deserialize_vector(bytes(blob))

    def test_truncated_payload_detected(self):
        blob = serialize_vector(np.ones(16, dtype=np.float32))
        with pytest.raises(SerializationError, match="length"):
            deserialize_vector(blob[:-4])


class TestChunking:
    def test_chunks_cover_payload(self):
        blob = bytes(range(256)) * 3
        chunks = chunk_payload(blob, 100)
        assert all(len(c) <= 100 for c in chunks)
        assert reassemble_chunks(chunks) == blob

    def test_empty_payload_single_chunk(self):
        assert chunk_payload(b"", 10) == [b""]

    def test_bad_chunk_size(self):
        with pytest.raises(SerializationError):
            chunk_payload(b"abc", 0)

    @given(st.binary(max_size=500), st.integers(1, 64))
    def test_chunk_roundtrip_property(self, blob, size):
        assert reassemble_chunks(chunk_payload(blob, size)) == blob

    def test_chunk_count(self):
        blob = b"x" * 1000
        assert len(chunk_payload(blob, 256)) == 4
