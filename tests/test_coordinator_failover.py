"""Coordinator failure-recovery and overload-rebalancing behaviour.

Complements ``test_system_components.py`` with the scenarios the paper's
Appendix E.4 / Section 6.3 describe end to end: task reassignment under
node failure with *live* client sessions attached (state loss semantics),
and the exact queue-backpressure threshold at which
``rebalance_overloaded`` moves a task.
"""

import pytest

from repro.core import TaskConfig, TrainingMode
from repro.sim import MetricsTrace, Simulator
from repro.sim.network import NetworkModel
from repro.sim.population import DevicePopulation, PopulationConfig
from repro.system import SurrogateAdapter
from repro.system.aggregator import AggregatorNode, FLTaskRuntime
from repro.system.client_runtime import ClientSession
from repro.system.coordinator import Coordinator
from repro.utils import EventLog, child_rng


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def log():
    return EventLog()


def make_runtime(sim, log, name="t", concurrency=10, goal=4):
    cfg = TaskConfig(name=name, mode=TrainingMode.ASYNC, concurrency=concurrency,
                     aggregation_goal=goal, model_size_bytes=1000)
    return FLTaskRuntime(cfg, SurrogateAdapter(seed=0), sim, MetricsTrace(), log)


def make_coordinator(sim, log, n_aggs=2):
    coord = Coordinator(sim, log, child_rng(0, "failover-test"),
                        heartbeat_interval_s=5.0, heartbeat_miss_limit=2)
    nodes = [AggregatorNode(i, sim, log) for i in range(n_aggs)]
    for n in nodes:
        coord.register_aggregator(n)
    return coord, nodes


def attach_session(sim, rt, device_id, trace=None):
    """Start a live client session against the runtime."""
    pop = DevicePopulation(PopulationConfig(n_devices=device_id + 1), seed=0)
    session = ClientSession(
        profile=pop.profile(device_id),
        task_rt=rt,
        sim=sim,
        network=NetworkModel(),
        population=pop,
        trace=trace if trace is not None else rt.trace,
        participation=0,
        failure_detection_s=5.0,
        on_end=lambda s: rt.session_ended(s),
    )
    rt.pending_assignments += 1
    rt.attach_session(session)
    return session


class TestReassignmentUnderNodeFailure:
    def test_live_sessions_aborted_and_buffer_dropped(self, sim, log):
        coord, nodes = make_coordinator(sim, log)
        rt = make_runtime(sim, log, goal=4)
        coord.register_task(rt)
        host = rt.node
        other = nodes[1 - host.node_id]

        s1 = attach_session(sim, rt, 0)
        s2 = attach_session(sim, rt, 1)
        # One update already buffered, both clients in flight beforehand.
        rt.core.register_download(s1.device_id)
        rt.core.register_download(s2.device_id)
        rt.core.receive_update(
            rt.adapter.train(s1.profile, None, rt.core.version, 0)
        )
        assert rt.core.buffered_count == 1
        assert rt.active_count() == 2

        # The host dies silently; only the healthy node heartbeats.
        host.fail()
        sim.schedule(60.0, lambda: None)
        sim.run_until_idle()
        coord.on_heartbeat(other, other.demand_report())
        moved = coord.sweep_failures()

        assert moved == ["t"]
        assert rt.node is other
        assert coord.placement["t"] == other.node_id
        # Appendix E.4 semantics: buffered updates and sessions are lost...
        assert rt.core.buffered_count == 0
        assert rt.core.in_flight_count() == 0
        assert rt.active_count() == 0
        assert s1.finished and s2.finished
        assert rt.pending_assignments == 0
        # ...but the model state and version survive the move.
        assert rt.core.version == 0

    def test_expired_heartbeat_marks_node_dead(self, sim, log):
        coord, nodes = make_coordinator(sim, log)
        rt = make_runtime(sim, log)
        coord.register_task(rt)
        host = rt.node
        # Node is nominally alive but silent past the miss limit.
        assert host.alive
        sim.schedule(coord.heartbeat_interval_s * coord.heartbeat_miss_limit + 1,
                     lambda: None)
        sim.run_until_idle()
        coord.on_heartbeat(nodes[1 - host.node_id], {})
        moved = coord.sweep_failures()
        assert moved == [rt.config.name]
        assert not host.alive

    def test_no_live_target_leaves_task_unhosted(self, sim, log):
        """A deployment-wide outage must not crash the sweep: the task
        stays unhosted (no assignments) until capacity recovers."""
        coord, nodes = make_coordinator(sim, log)
        rt = make_runtime(sim, log)
        coord.register_task(rt)
        for node in nodes:
            node.fail()
        sim.schedule(60.0, lambda: None)
        sim.run_until_idle()
        moved = coord.sweep_failures()
        assert moved == [rt.config.name]
        assert rt.node is None
        assert not rt.is_routable()
        assert coord.assign_client() is None
        assert log.of_kind("tasks_unplaced")[-1].detail["tasks"] == ["t"]
        # Still no capacity: later sweeps keep it parked without raising.
        assert coord.sweep_failures() == []
        assert rt.node is None

    def test_reassignment_bumps_assignment_seq(self, sim, log):
        coord, nodes = make_coordinator(sim, log)
        rt = make_runtime(sim, log)
        coord.register_task(rt)
        seq0 = coord.assignment_seq
        host = rt.node
        host.fail()
        sim.schedule(60.0, lambda: None)
        sim.run_until_idle()
        coord.on_heartbeat(nodes[1 - host.node_id], {})
        coord.sweep_failures()
        assert coord.assignment_seq == seq0 + 1

    def test_dead_empty_node_is_skipped(self, sim, log):
        coord, nodes = make_coordinator(sim, log)
        nodes[1].fail()  # dead but hosts nothing
        sim.schedule(60.0, lambda: None)
        sim.run_until_idle()
        assert coord.sweep_failures() == []


class TestQueueDepthRebalancing:
    def _load_queue(self, node, rt, updates, process_time):
        class FakeSession:
            device_id = 0

        node.update_process_time_s = process_time
        for _ in range(updates):
            node.enqueue_update(rt, FakeSession(), None)

    def _two_task_host(self, sim, log):
        coord, nodes = make_coordinator(sim, log)
        heavy = make_runtime(sim, log, "heavy", concurrency=100)
        light = make_runtime(sim, log, "light", concurrency=2, goal=2)
        coord.register_task(heavy)
        host = heavy.node
        coord.register_task(light)
        if light.node is not host:
            light.node.drop_task("light")
            host.host(light)
            coord.placement["light"] = host.node_id
        return coord, nodes, host, heavy, light

    def test_queue_depth_at_threshold_does_not_move(self, sim, log):
        coord, nodes, host, heavy, light = self._two_task_host(sim, log)
        # 4 shards x 10 updates x 1s = exactly 10s of backlog per shard.
        self._load_queue(host, heavy, 40, 1.0)
        assert host.queue_depth_seconds() == pytest.approx(10.0)
        assert coord.rebalance_overloaded(queue_threshold_s=10.0) == []
        assert light.node is host

    def test_queue_depth_above_threshold_moves_lightest(self, sim, log):
        coord, nodes, host, heavy, light = self._two_task_host(sim, log)
        self._load_queue(host, heavy, 44, 1.0)  # 11s > 10s threshold
        assert host.queue_depth_seconds() > 10.0
        moved = coord.rebalance_overloaded(queue_threshold_s=10.0)
        assert moved == ["light"]
        assert light.node is nodes[1 - host.node_id]
        assert coord.placement["light"] == light.node.node_id

    def test_queue_depth_decays_with_simulated_time(self, sim, log):
        coord, nodes, host, heavy, light = self._two_task_host(sim, log)
        self._load_queue(host, heavy, 44, 1.0)
        depth_before = host.queue_depth_seconds()
        # Give the shards simulated time to drain below the threshold.
        sim.run_until(sim.now + depth_before)
        assert host.queue_depth_seconds() == pytest.approx(0.0)
        assert coord.rebalance_overloaded(queue_threshold_s=10.0) == []

    def test_rebalance_skipped_when_coordinator_dead(self, sim, log):
        coord, nodes, host, heavy, light = self._two_task_host(sim, log)
        self._load_queue(host, heavy, 44, 1.0)
        coord.fail()
        assert coord.rebalance_overloaded(queue_threshold_s=10.0) == []
        assert light.node is host

    def test_planned_move_is_lossless_for_sessions(self, sim, log):
        coord, nodes, host, heavy, light = self._two_task_host(sim, log)
        session = attach_session(sim, light, 3)
        light.core.register_download(session.device_id)
        light.core.receive_update(
            light.adapter.train(session.profile, None, light.core.version, 0)
        )
        self._load_queue(host, heavy, 44, 1.0)
        moved = coord.rebalance_overloaded(queue_threshold_s=10.0)
        assert moved == ["light"]
        # Planned move (Section 6.3): nothing is lost, the session lives on.
        assert not session.finished
        assert light.active_count() == 1
        assert light.core.updates_received == 1


class TestRecoveryWindowEdges:
    """Boundary behaviour of heartbeat expiry and the recovery window."""

    def test_heartbeat_exactly_at_miss_limit_keeps_node_alive(self, sim, log):
        coord, nodes = make_coordinator(sim, log)
        rt = make_runtime(sim, log)
        coord.register_task(rt)
        host = rt.node
        other = nodes[1 - host.node_id]
        deadline = coord.heartbeat_interval_s * coord.heartbeat_miss_limit
        # Silence lasting *exactly* the miss limit is not yet a miss:
        # expiry requires now - last_heartbeat to strictly exceed it.
        sim.run_until(deadline)
        assert sim.now == pytest.approx(deadline)
        assert coord.sweep_failures() == []
        assert host.alive
        # A heartbeat landing exactly at the limit resets the clock...
        coord.on_heartbeat(host, host.demand_report())
        sim.run_until(deadline * 2)
        assert coord.sweep_failures() == []
        assert host.alive
        # ...and the first sweep strictly past the (new) deadline expires
        # it (the healthy sibling keeps heartbeating, as the orchestrator
        # loop would, and inherits the task).
        sim.schedule(deadline + 1e-9, lambda: None)
        sim.run_until_idle()
        coord.on_heartbeat(other, other.demand_report())
        assert coord.sweep_failures() == [rt.config.name]
        assert not host.alive
        assert rt.node is other

    def test_all_nodes_dead_then_one_recovers_replaces_task(self, sim, log):
        coord, nodes = make_coordinator(sim, log)
        rt = make_runtime(sim, log)
        coord.register_task(rt)
        for node in nodes:
            node.fail()
        # No live target: the task is parked unhosted, assignments pause.
        assert coord.sweep_failures() == [rt.config.name]
        assert rt.node is None
        assert not rt.is_routable()

        nodes[1].recover()
        # The recovered node must heartbeat before the next sweep, or its
        # stale last_heartbeat would expire it right back to dead.
        coord.on_heartbeat(nodes[1], nodes[1].demand_report())
        moved = coord.sweep_failures()
        assert moved == [rt.config.name]
        assert rt.node is nodes[1]
        assert coord.placement[rt.config.name] == nodes[1].node_id
        assert rt.is_routable()

    def test_assignments_rejected_accounting_through_recovery(self, sim, log):
        coord, nodes = make_coordinator(sim, log)
        rt = make_runtime(sim, log, concurrency=10)
        coord.register_task(rt)
        assert coord.assign_client() is rt
        assert coord.assignments_made == 1
        rt.pending_assignments = 0

        # Dead coordinator: every attempt is rejected and counted.
        coord.fail()
        for _ in range(3):
            assert coord.assign_client() is None
        assert coord.assignments_rejected == 3

        # Recovered but inside the recovery window: still rejected.
        coord.recover()
        assert coord.alive and not coord.accepting_assignments
        assert coord.assign_client() is None
        assert coord.assignments_rejected == 4

        # One tick before the window closes: rejected; at the boundary
        # (now == recovering_until) assignments resume.
        sim.run_until(coord.recovery_period_s - 1.0)
        assert coord.assign_client() is None
        assert coord.assignments_rejected == 5
        sim.run_until(coord.recovery_period_s)
        assert coord.accepting_assignments
        assert coord.assign_client() is rt
        assert coord.assignments_made == 2
        assert coord.assignments_rejected == 5
