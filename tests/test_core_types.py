"""Tests for core datatypes and staleness policies."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    ConstantStaleness,
    HardCutoffStaleness,
    ModelUpdate,
    PolynomialStaleness,
    TaskConfig,
    TrainingMode,
    TrainingResult,
)


def make_result(cid=0, n=10, version=0):
    return TrainingResult(
        client_id=cid,
        delta=np.zeros(3, dtype=np.float32),
        num_examples=n,
        train_loss=1.0,
        initial_version=version,
    )


class TestTaskConfig:
    def test_defaults_valid(self):
        cfg = TaskConfig()
        assert cfg.mode is TrainingMode.ASYNC

    def test_cohort_size_with_over_selection(self):
        cfg = TaskConfig(mode=TrainingMode.SYNC, aggregation_goal=1000,
                         over_selection=0.3, concurrency=1300)
        assert cfg.cohort_size == 1300

    def test_cohort_size_rounds_up(self):
        cfg = TaskConfig(mode=TrainingMode.SYNC, aggregation_goal=10,
                         over_selection=0.25, concurrency=13)
        assert cfg.cohort_size == 13  # ceil(12.5)

    def test_async_goal_above_concurrency_rejected(self):
        with pytest.raises(ValueError, match="deadlock"):
            TaskConfig(mode=TrainingMode.ASYNC, concurrency=10, aggregation_goal=20)

    def test_sync_goal_above_concurrency_allowed(self):
        # Sync replaces clients between rounds so this is not a deadlock.
        TaskConfig(mode=TrainingMode.SYNC, concurrency=10, aggregation_goal=20)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"concurrency": 0},
            {"aggregation_goal": 0},
            {"over_selection": 1.0},
            {"over_selection": -0.1},
            {"max_staleness": -1},
            {"client_timeout_s": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        base = dict(mode=TrainingMode.SYNC)
        with pytest.raises(ValueError):
            TaskConfig(**base, **kwargs)

    def test_with_updates(self):
        cfg = TaskConfig(concurrency=100, aggregation_goal=10)
        cfg2 = cfg.with_updates(aggregation_goal=20)
        assert cfg2.aggregation_goal == 20 and cfg.aggregation_goal == 10

    def test_with_updates_revalidates(self):
        cfg = TaskConfig(concurrency=100, aggregation_goal=10)
        with pytest.raises(ValueError):
            cfg.with_updates(aggregation_goal=500)


class TestTrainingResult:
    def test_zero_examples_rejected(self):
        with pytest.raises(ValueError):
            make_result(n=0)

    def test_staleness_computed(self):
        upd = ModelUpdate(result=make_result(version=3), arrival_version=7, weight=1.0)
        assert upd.staleness == 4


class TestStalenessPolicies:
    def test_polynomial_matches_paper_formula(self):
        # w = 1/sqrt(1+s), Appendix E.2.
        pol = PolynomialStaleness(0.5)
        assert pol(0) == 1.0
        assert pol(3) == pytest.approx(0.5)
        assert pol(99) == pytest.approx(0.1)

    def test_polynomial_monotone_decreasing(self):
        pol = PolynomialStaleness(0.5)
        ws = [pol(s) for s in range(20)]
        assert all(a >= b for a, b in zip(ws, ws[1:]))

    def test_constant_always_one(self):
        pol = ConstantStaleness()
        assert pol(0) == pol(50) == 1.0

    def test_hard_cutoff(self):
        pol = HardCutoffStaleness(cutoff=5)
        assert pol(5) == 1.0 and pol(6) == 0.0

    def test_negative_staleness_rejected(self):
        with pytest.raises(ValueError):
            PolynomialStaleness()(-1)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            PolynomialStaleness(-1)
        with pytest.raises(ValueError):
            HardCutoffStaleness(-1)

    @given(st.integers(0, 10_000))
    def test_weights_always_in_unit_interval(self, s):
        for pol in (PolynomialStaleness(0.5), ConstantStaleness(), HardCutoffStaleness(10)):
            assert 0.0 <= pol(s) <= 1.0
