"""Threat-model tests: the attacks of Appendix B/C must all fail."""

import numpy as np
import pytest

from repro.secagg import (
    AttestationError,
    PowerOfTwoGroup,
    SecAggClient,
    SigningAuthority,
    build_deployment,
    hash_binary,
    hash_params,
)
from repro.secagg.threat import (
    bump_sequence_number,
    flip_sealed_ciphertext_bit,
    flip_tag_bit,
    masked_update_uniformity_pvalue,
)
from repro.utils import child_rng


def make_client(dep, cid=0):
    return SecAggClient(
        cid,
        dep.codec,
        dep.authority,
        dep.tsa.binary_hash,
        dep.tsa.params_hash,
        child_rng(0, "threat-client", cid),
    )


class TestServerTampering:
    """"The server cannot successfully tamper with the data that is meant
    to be sent into the enclave" (Appendix C.1)."""

    def test_flipped_ciphertext_rejected(self):
        dep = build_deployment(vector_length=8, threshold=1)
        sub = make_client(dep).participate(np.zeros(8), dep.server.assign_leg())
        assert dep.server.submit(flip_sealed_ciphertext_bit(sub)) is False

    def test_flipped_tag_rejected(self):
        dep = build_deployment(vector_length=8, threshold=1)
        sub = make_client(dep).participate(np.zeros(8), dep.server.assign_leg())
        assert dep.server.submit(flip_tag_bit(sub)) is False

    def test_replayed_sequence_rejected(self):
        dep = build_deployment(vector_length=8, threshold=1)
        sub = make_client(dep).participate(np.zeros(8), dep.server.assign_leg())
        assert dep.server.submit(bump_sequence_number(sub)) is False

    def test_rejected_submission_not_aggregated(self):
        # A rejected blob must not poison the masked running sum.
        dep = build_deployment(vector_length=8, threshold=1)
        c0, c1 = make_client(dep, 0), make_client(dep, 1)
        bad = flip_sealed_ciphertext_bit(
            c0.participate(np.full(8, 9.0), dep.server.assign_leg())
        )
        assert dep.server.submit(bad) is False
        good = c1.participate(np.full(8, 0.25), dep.server.assign_leg())
        assert dep.server.submit(good) is True
        agg = dep.server.finalize(max_abs=10.0)
        np.testing.assert_allclose(agg, np.full(8, 0.25), atol=1e-3)

    def test_second_enclave_cannot_open_seed(self):
        # "the encrypted seed and the response is not accepted by another
        # enclave instance" — a different TSA has different leg keys.
        dep_a = build_deployment(vector_length=8, threshold=1, seed=1)
        dep_b = build_deployment(vector_length=8, threshold=1, seed=2)
        sub = make_client(dep_a).participate(np.zeros(8), dep_a.server.assign_leg())
        # Forward client A's blob to enclave B (same leg index exists there).
        accepted = dep_b.tsa.process_client(
            sub.leg_index, sub.completing_message, sub.sealed_seed
        )
        assert accepted is False


class TestClientSideChecks:
    """Clients abort unless the enclave proves identity and parameters
    (Figure 19) and log inclusion (Figure 20)."""

    def test_client_aborts_on_wrong_binary(self):
        dep = build_deployment(vector_length=4, threshold=1)
        client = SecAggClient(
            0, dep.codec, dep.authority, hash_binary(b"expected-other-binary"),
            dep.tsa.params_hash, child_rng(0, "c"),
        )
        with pytest.raises(AttestationError):
            client.participate(np.zeros(4), dep.server.assign_leg())

    def test_client_aborts_on_parameter_downgrade(self):
        dep = build_deployment(vector_length=4, threshold=3)
        client = SecAggClient(
            0, dep.codec, dep.authority, dep.tsa.binary_hash,
            hash_params(group_bits=32, vector_length=4, threshold=1000),
            child_rng(0, "c"),
        )
        with pytest.raises(AttestationError):
            client.participate(np.zeros(4), dep.server.assign_leg())

    def test_client_aborts_on_rogue_authority(self):
        dep = build_deployment(vector_length=4, threshold=1)
        rogue = SigningAuthority(secret=b"rogue")
        fake_quote = rogue.issue(dep.tsa.binary_hash, dep.tsa.params_hash, b"\x02" * 256)
        from repro.secagg.tsa import KeyExchangeLeg

        fake_leg = KeyExchangeLeg(index=0, quote=fake_quote)
        with pytest.raises(AttestationError):
            make_client(dep).participate(np.zeros(4), fake_leg)

    def test_client_aborts_on_unlogged_binary(self):
        from dataclasses import replace

        dep = build_deployment(vector_length=4, threshold=1)
        bad_bundle = replace(dep.log_bundle, entry=b"manifest|unlogged-binary")
        with pytest.raises(AttestationError, match="log"):
            make_client(dep).participate(
                np.zeros(4), dep.server.assign_leg(), log_bundle=bad_bundle
            )

    def test_client_accepts_honest_deployment(self):
        dep = build_deployment(vector_length=4, threshold=1)
        sub = make_client(dep).participate(
            np.zeros(4), dep.server.assign_leg(), log_bundle=dep.log_bundle
        )
        assert dep.server.submit(sub) is True


class TestPrivacy:
    def test_masked_update_statistically_uniform(self):
        # Extremely structured plaintext (all zeros, then a ramp): the
        # masked wire value must look uniform over the group.
        dep = build_deployment(vector_length=4096, threshold=1)
        group = PowerOfTwoGroup(32)
        for payload in (np.zeros(4096), np.linspace(-1, 1, 4096)):
            sub = make_client(dep, cid=int(payload[0]) + 7).participate(
                payload, dep.server.assign_leg()
            )
            p = masked_update_uniformity_pvalue(sub.masked_update, group)
            assert p > 0.01, "masked update is distinguishable from noise"

    def test_two_updates_same_plaintext_look_unrelated(self):
        dep = build_deployment(vector_length=256, threshold=2)
        s0 = make_client(dep, 0).participate(np.ones(256), dep.server.assign_leg())
        s1 = make_client(dep, 1).participate(np.ones(256), dep.server.assign_leg())
        # Identical plaintexts, yet ciphertexts share no structure.
        same = int((s0.masked_update == s1.masked_update).sum())
        assert same <= 2  # chance collisions only

    def test_aggregate_reveals_only_the_sum(self):
        updates = [np.full(16, 1.0), np.full(16, -1.0), np.full(16, 0.5)]
        from repro.secagg import run_secure_aggregation

        agg, dep = run_secure_aggregation(updates)
        np.testing.assert_allclose(agg, np.full(16, 0.5), atol=1e-3)
        # The transcript the server holds is masked; no accepted submission
        # decodes to any client's plaintext.
        for sub in dep.server.accepted_submissions:
            decoded = dep.codec.decode(sub.masked_update)
            for u in updates:
                assert not np.allclose(decoded, u, atol=0.2)
