"""Legacy setup shim.

The execution environment has setuptools but not the ``wheel`` package, so
PEP 517 editable builds fail; this shim lets ``pip install -e .`` fall back
to the classic ``setup.py develop`` path.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
